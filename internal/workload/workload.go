// Package workload generates the synthetic databases the benchmark
// harness runs on. The paper's load bounds distinguish two regimes —
// skew-free data (every domain element occurs at most once per
// relation; "matching databases") and skewed data with heavy hitters —
// so the generators here produce both, deterministically from a seed.
package workload

import (
	"math/rand"
	"strconv"

	"mpclogic/internal/rel"
)

// value blocks keep the columns of generated relations disjoint so
// that instances are easy to reason about: column k of generator block
// b draws from [base(b,k), base(b,k)+span).
const span = 1 << 24

func base(block, col int) rel.Value {
	return rel.Value((block*8 + col) * span)
}

// JoinSkewFree returns an instance over R(x,y), S(y,z) with m tuples
// per relation, no repeated values within a relation, and every R-tuple
// joining exactly one S-tuple (output size m). This is the skew-free
// regime of Example 3.1(1a) where the repartition join achieves load
// O(m/p).
func JoinSkewFree(m int) *rel.Instance {
	i := rel.NewInstance()
	for k := 0; k < m; k++ {
		a := base(0, 0) + rel.Value(k)
		b := base(0, 1) + rel.Value(k)
		c := base(0, 2) + rel.Value(k)
		i.Add(rel.NewFact("R", a, b))
		i.Add(rel.NewFact("S", b, c))
	}
	return i
}

// JoinSkewed returns R, S with m tuples each where a fraction
// heavyFrac of the tuples of both relations carry one heavy-hitter
// join value. The repartition join must ship all heavy tuples to a
// single server, so its max load degrades toward Θ(m); the grouping
// join of Example 3.1(1b) does not.
func JoinSkewed(m int, heavyFrac float64) *rel.Instance {
	i := rel.NewInstance()
	heavy := base(0, 1) // the heavy-hitter join value
	nHeavy := int(float64(m) * heavyFrac)
	for k := 0; k < m; k++ {
		a := base(0, 0) + rel.Value(k)
		c := base(0, 2) + rel.Value(k)
		b := heavy
		if k >= nHeavy {
			b = base(0, 1) + rel.Value(k+1) // +1 keeps clear of `heavy`
		}
		i.Add(rel.NewFact("R", a, b))
		i.Add(rel.NewFact("S", b, c))
	}
	return i
}

// TriangleSkewFree returns a matching database over R(x,y), S(y,z),
// T(z,x) with m tuples per relation forming exactly m triangles; every
// value occurs once per relation. This is the regime where HyperCube
// achieves load O(m/p^{2/3}) (Example 3.2).
func TriangleSkewFree(m int) *rel.Instance {
	i := rel.NewInstance()
	for k := 0; k < m; k++ {
		a := base(1, 0) + rel.Value(k)
		b := base(1, 1) + rel.Value(k)
		c := base(1, 2) + rel.Value(k)
		i.Add(rel.NewFact("R", a, b))
		i.Add(rel.NewFact("S", b, c))
		i.Add(rel.NewFact("T", c, a))
	}
	return i
}

// TriangleSkewed plants a heavy-hitter value shared by a heavyFrac
// fraction of every relation's tuples (in the join position linking R
// and S), the regime where one-round algorithms provably degrade to
// m/p^{1/2} (Section 3.2).
func TriangleSkewed(m int, heavyFrac float64) *rel.Instance {
	i := rel.NewInstance()
	heavy := base(1, 1)
	nHeavy := int(float64(m) * heavyFrac)
	for k := 0; k < m; k++ {
		a := base(1, 0) + rel.Value(k)
		c := base(1, 2) + rel.Value(k)
		b := heavy
		if k >= nHeavy {
			b = base(1, 1) + rel.Value(k+1)
		}
		i.Add(rel.NewFact("R", a, b))
		i.Add(rel.NewFact("S", b, c))
		i.Add(rel.NewFact("T", c, a))
	}
	return i
}

// RandomGraph returns a directed graph E(x,y) with n vertices and m
// distinct edges, drawn uniformly with the given seed.
func RandomGraph(n, m int, seed int64) *rel.Instance {
	r := rand.New(rand.NewSource(seed))
	i := rel.NewInstance()
	for i.Len() < m {
		a := rel.Value(r.Intn(n))
		b := rel.Value(r.Intn(n))
		if a == b {
			continue
		}
		i.Add(rel.NewFact("E", a, b))
	}
	return i
}

// CycleGraph returns the directed n-cycle 0→1→…→n−1→0 over E.
func CycleGraph(n int) *rel.Instance {
	i := rel.NewInstance()
	for k := 0; k < n; k++ {
		i.Add(rel.NewFact("E", rel.Value(k), rel.Value((k+1)%n)))
	}
	return i
}

// PathGraph returns the directed path 0→1→…→n over E (n edges).
func PathGraph(n int) *rel.Instance {
	i := rel.NewInstance()
	for k := 0; k < n; k++ {
		i.Add(rel.NewFact("E", rel.Value(k), rel.Value(k+1)))
	}
	return i
}

// ComponentsGraph returns k disjoint directed cycles of the given size
// — an instance with exactly k connected components, used by the
// domain-disjoint-monotonicity experiments (Section 5.2.2).
func ComponentsGraph(k, size int) *rel.Instance {
	i := rel.NewInstance()
	for comp := 0; comp < k; comp++ {
		off := rel.Value(comp * size)
		for v := 0; v < size; v++ {
			i.Add(rel.NewFact("E", off+rel.Value(v), off+rel.Value((v+1)%size)))
		}
	}
	return i
}

// Zipf returns a binary relation of m tuples whose join column (index
// 1) follows a Zipf(s) distribution over n values — realistic skew for
// the SharesSkew-style experiments. The first column is unique per
// tuple.
func Zipf(name string, m, n int, s float64, seed int64) *rel.Instance {
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, s, 1, uint64(n-1))
	i := rel.NewInstance()
	for k := 0; k < m; k++ {
		i.Add(rel.NewFact(name, base(2, 0)+rel.Value(k), base(2, 1)+rel.Value(z.Uint64())))
	}
	return i
}

// AcyclicChain builds an acyclic multiway-join instance over
// R1(x0,x1), R2(x1,x2), …, Rk(x(k-1),xk) where each relation has m
// tuples and consecutive relations join on shared values; a fraction
// dangling of each relation's tuples deliberately fail to join (they
// are "dangling" tuples for Yannakakis' semi-join phase to remove).
func AcyclicChain(k, m int, dangling float64, seed int64) (*rel.Instance, []string) {
	r := rand.New(rand.NewSource(seed))
	i := rel.NewInstance()
	names := make([]string, k)
	nDangle := int(float64(m) * dangling)
	for rIdx := 0; rIdx < k; rIdx++ {
		names[rIdx] = "R" + strconv.Itoa(rIdx)
		for t := 0; t < m; t++ {
			left := base(3+rIdx, 0) + rel.Value(t)
			right := base(3+rIdx+1, 0) + rel.Value(t)
			if t < nDangle {
				// Shift the right endpoint out of the next relation's
				// left column so this tuple dangles.
				right = base(3+rIdx+1, 0) + rel.Value(m+1+r.Intn(m))
			}
			i.Add(rel.NewFact(names[rIdx], left, right))
		}
	}
	return i, names
}

// HeavyHitters returns the values in column col of relation name whose
// frequency strictly exceeds threshold — the paper's notion of skewed
// values.
func HeavyHitters(i *rel.Instance, name string, col int, threshold int) []rel.Value {
	r := i.Relation(name)
	if r == nil {
		return nil
	}
	freq := map[rel.Value]int{}
	r.Each(func(t rel.Tuple) bool {
		freq[t[col]]++
		return true
	})
	set := make(rel.ValueSet)
	for v, n := range freq {
		if n > threshold {
			set.Add(v)
		}
	}
	return set.Sorted()
}
