package workload

import (
	"testing"

	"mpclogic/internal/cq"
	"mpclogic/internal/rel"
)

func TestJoinSkewFreeShape(t *testing.T) {
	i := JoinSkewFree(100)
	if i.Relation("R").Len() != 100 || i.Relation("S").Len() != 100 {
		t.Fatalf("relation sizes wrong")
	}
	// No repeated value within any column of any relation.
	if hh := HeavyHitters(i, "R", 1, 1); len(hh) != 0 {
		t.Errorf("skew-free R has heavy hitters: %v", hh)
	}
	if hh := HeavyHitters(i, "S", 0, 1); len(hh) != 0 {
		t.Errorf("skew-free S has heavy hitters: %v", hh)
	}
	// Output size is exactly m.
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z)")
	if got := cq.Evaluate(q, i).Len(); got != 100 {
		t.Errorf("join output = %d, want 100", got)
	}
}

func TestJoinSkewedHeavyHitter(t *testing.T) {
	i := JoinSkewed(200, 0.5)
	hh := HeavyHitters(i, "R", 1, 50)
	if len(hh) != 1 {
		t.Fatalf("heavy hitters = %v, want exactly one", hh)
	}
	// The heavy value appears in ~half the tuples of each relation.
	count := 0
	i.Relation("R").Each(func(tu rel.Tuple) bool {
		if tu[1] == hh[0] {
			count++
		}
		return true
	})
	if count != 100 {
		t.Errorf("heavy value frequency in R = %d, want 100", count)
	}
}

func TestTriangleSkewFree(t *testing.T) {
	i := TriangleSkewFree(50)
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	if got := cq.Evaluate(q, i).Len(); got != 50 {
		t.Errorf("triangles = %d, want 50", got)
	}
	for _, name := range []string{"R", "S", "T"} {
		for col := 0; col < 2; col++ {
			if hh := HeavyHitters(i, name, col, 1); len(hh) != 0 {
				t.Errorf("matching database has heavy hitters in %s col %d", name, col)
			}
		}
	}
}

func TestTriangleSkewedStillJoins(t *testing.T) {
	i := TriangleSkewed(60, 0.25)
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	out := cq.Evaluate(q, i)
	// Heavy block: 15 R-tuples share b with 15 S-tuples; triangle
	// closure via T(c,a) only holds for matching k, so exactly m
	// triangles remain... heavy tuples R(a_k,h),S(h,c_j) close only
	// when T(c_j,a_k) exists, i.e. j == k. Output stays m.
	if out.Len() != 60 {
		t.Errorf("triangles = %d, want 60", out.Len())
	}
	if hh := HeavyHitters(i, "R", 1, 10); len(hh) != 1 {
		t.Errorf("expected one heavy hitter, got %v", hh)
	}
}

func TestRandomGraphDeterministic(t *testing.T) {
	a := RandomGraph(50, 200, 7)
	b := RandomGraph(50, 200, 7)
	if !a.Equal(b) {
		t.Errorf("same seed, different graphs")
	}
	c := RandomGraph(50, 200, 8)
	if a.Equal(c) {
		t.Errorf("different seeds, same graph")
	}
	if a.Relation("E").Len() != 200 {
		t.Errorf("edge count = %d", a.Relation("E").Len())
	}
	a.Relation("E").Each(func(tu rel.Tuple) bool {
		if tu[0] == tu[1] {
			t.Errorf("self-loop generated")
		}
		return true
	})
}

func TestCyclePathComponents(t *testing.T) {
	if CycleGraph(5).Relation("E").Len() != 5 {
		t.Errorf("cycle size")
	}
	if PathGraph(5).Relation("E").Len() != 5 {
		t.Errorf("path size")
	}
	comps := ComponentsGraph(4, 3)
	if comps.Len() != 12 {
		t.Errorf("components total = %d", comps.Len())
	}
	if got := len(rel.Components(comps)); got != 4 {
		t.Errorf("connected components = %d, want 4", got)
	}
}

func TestZipfSkew(t *testing.T) {
	i := Zipf("R", 2000, 100, 1.5, 3)
	if i.Relation("R").Len() != 2000 {
		t.Fatalf("size = %d", i.Relation("R").Len())
	}
	// With s=1.5 the most frequent value should far exceed uniform
	// frequency (2000/100 = 20).
	hh := HeavyHitters(i, "R", 1, 100)
	if len(hh) == 0 {
		t.Errorf("Zipf produced no heavy hitters above 5× uniform")
	}
}

func TestAcyclicChain(t *testing.T) {
	i, names := AcyclicChain(3, 100, 0.2, 1)
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		if i.Relation(n).Len() != 100 {
			t.Errorf("relation %s size = %d", n, i.Relation(n).Len())
		}
	}
	// The full chain join should produce exactly the non-dangling
	// aligned tuples: each relation keeps 80 joining tuples that align
	// by construction.
	d := rel.NewDict()
	q := cq.MustParse(d, "H(a, b, c, dd) :- R0(a, b), R1(b, c), R2(c, dd)")
	out := cq.Evaluate(q, i)
	if out.Len() != 80 {
		t.Errorf("chain join output = %d, want 80", out.Len())
	}
}

func TestHeavyHittersMissingRelation(t *testing.T) {
	if got := HeavyHitters(rel.NewInstance(), "R", 0, 1); got != nil {
		t.Errorf("missing relation gave %v", got)
	}
}
