package experiments

import (
	"mpclogic/internal/cq"
	"mpclogic/internal/gym"
	"mpclogic/internal/hypercube"
	"mpclogic/internal/mpc"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

// Chu, Balazinska and Suciu's empirical findings (Section 3.1 of the
// paper): HyperCube — paired with a worst-case-optimal local join —
// performs well on join queries with large intermediate results, and
// can perform badly on queries with small output, where semijoin-based
// multi-round plans ship far less data.

func init() {
	register("CBS-hypercube-vs-multiround", expCBS)
}

func expCBS() (*Report, error) {
	rep := &Report{
		ID:    "CBS",
		Title: "HyperCube + worst-case-optimal join vs multi-round plans (Chu-Balazinska-Suciu)",
		Claim: "HyperCube wins on large-intermediate queries; on small-output queries the semijoin plan ships much less data",
		Pass:  true,
	}
	d := rel.NewDict()

	// Part 1: large intermediate, triangle on a fan instance. The
	// cascade ships the quadratic R⋈S; HyperCube ships each relation
	// p^{1/3} times. The worst-case-optimal local join keeps per-server
	// work near the output.
	tri := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	fan := rel.NewInstance()
	hub := rel.Value(1 << 28)
	n := 400
	for i := 0; i < n; i++ {
		fan.Add(rel.NewFact("R", rel.Value(i), hub))
		fan.Add(rel.NewFact("S", hub, rel.Value(100000+i)))
	}
	for i := 0; i < 20; i++ {
		fan.Add(rel.NewFact("T", rel.Value(100000+i), rel.Value(i)))
	}
	want := cq.Output(tri, fan)

	p := 64
	g, err := hypercube.NewOptimalGrid(tri, p, 9)
	if err != nil {
		return nil, err
	}
	hc := mpc.NewCluster(g.P())
	hc.LoadRoundRobin(fan)
	round := hypercube.HyperCubeRound(g)
	// Pair the shuffle with the worst-case-optimal local engine.
	round.Compute = func(_ int, local *rel.Instance) *rel.Instance {
		out := rel.NewInstance()
		res, err := cq.GenericJoin(tri, local)
		if err != nil {
			return out
		}
		out.SetRelation(res)
		return out
	}
	if err := hc.Run(round); err != nil {
		return nil, err
	}
	if !hc.Output().Equal(want) {
		rep.Pass = false
		rep.rowf("hypercube+generic-join WRONG on fan triangle")
	}

	cas, casOut, err := gym.CascadeTriangle(p, fan, 9)
	if err != nil {
		return nil, err
	}
	if !casOut.Filter(func(f rel.Fact) bool { return f.Rel == "H" }).Equal(want) {
		rep.Pass = false
		rep.rowf("cascade WRONG on fan triangle")
	}
	rep.rowf("fan triangle (|R⋈S| = %d, output = %d):", n*n, want.Len())
	rep.rowf("  hypercube+WCOJ: rounds=%d totalComm=%d", hc.Rounds(), hc.TotalComm())
	rep.rowf("  cascade:        rounds=%d totalComm=%d (ships the fan product)", cas.Rounds(), cas.TotalComm())
	if hc.TotalComm() >= cas.TotalComm() {
		rep.Pass = false
	}

	// Part 2: small output. A 3-chain with 90% dangling tuples: the
	// semijoin-reduced Yannakakis plan ships little; HyperCube must
	// still replicate every tuple.
	chain := cq.MustParse(d, "H(a, dd) :- R0(a, b), R1(b, c), R2(c, dd)")
	inst, _ := workload.AcyclicChain(3, 2000, 0.9, 3)
	wantChain := cq.Output(chain, inst)

	g2, err := hypercube.NewOptimalGrid(chain, p, 9)
	if err != nil {
		return nil, err
	}
	hc2 := mpc.NewCluster(g2.P())
	hc2.LoadRoundRobin(inst)
	round2 := hypercube.HyperCubeRound(g2)
	if err := hc2.Run(round2); err != nil {
		return nil, err
	}
	if !hc2.Output().Equal(wantChain) {
		rep.Pass = false
		rep.rowf("hypercube WRONG on chain")
	}
	yc, yOut, err := gym.DistributedYannakakis(chain, p, inst, 9)
	if err != nil {
		return nil, err
	}
	if !yOut.Equal(wantChain) {
		rep.Pass = false
		rep.rowf("distributed yannakakis WRONG on chain")
	}
	rep.rowf("dangling chain (input = %d, output = %d):", inst.Len(), wantChain.Len())
	rep.rowf("  hypercube:  rounds=%d totalComm=%d (replicates everything)", hc2.Rounds(), hc2.TotalComm())
	rep.rowf("  yannakakis: rounds=%d totalComm=%d (semijoins first)", yc.Rounds(), yc.TotalComm())
	if yc.TotalComm() >= hc2.TotalComm() {
		rep.Pass = false
	}
	return rep, nil
}
