package experiments

import (
	"mpclogic/internal/cq"
	"mpclogic/internal/gym"
	"mpclogic/internal/hypercube"
	"mpclogic/internal/mpc"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

// Chu, Balazinska and Suciu's empirical findings (Section 3.1 of the
// paper): HyperCube — paired with a worst-case-optimal local join —
// performs well on join queries with large intermediate results, and
// can perform badly on queries with small output, where semijoin-based
// multi-round plans ship far less data. The two regimes are
// independent cells.

func init() {
	register(Def{
		ID:    "CBS-hypercube-vs-multiround",
		Name:  "CBS",
		Title: "HyperCube + worst-case-optimal join vs multi-round plans (Chu-Balazinska-Suciu)",
		Claim: "HyperCube wins on large-intermediate queries; on small-output queries the semijoin plan ships much less data",
		Cells: []Cell{
			{Params: "fan-triangle", Run: cellCBSFanTriangle},
			{Params: "dangling-chain", Run: cellCBSDanglingChain},
		},
	})
}

// Part 1: large intermediate, triangle on a fan instance. The
// cascade ships the quadratic R⋈S; HyperCube ships each relation
// p^{1/3} times. The worst-case-optimal local join keeps per-server
// work near the output.
func cellCBSFanTriangle() (*Result, error) {
	res := newResult()
	d := rel.NewDict()
	tri := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	fan := rel.NewInstance()
	hub := rel.Value(1 << 28)
	n := 400
	for i := 0; i < n; i++ {
		fan.Add(rel.NewFact("R", rel.Value(i), hub))
		fan.Add(rel.NewFact("S", hub, rel.Value(100000+i)))
	}
	for i := 0; i < 20; i++ {
		fan.Add(rel.NewFact("T", rel.Value(100000+i), rel.Value(i)))
	}
	want := cq.Output(tri, fan)

	p := 64
	g, err := hypercube.NewOptimalGrid(tri, p, 9)
	if err != nil {
		return nil, err
	}
	hc := mpc.NewCluster(g.P())
	hc.LoadRoundRobin(fan)
	round := hypercube.HyperCubeRound(g)
	// Pair the shuffle with the worst-case-optimal local engine.
	round.Compute = func(_ int, local *rel.Instance) *rel.Instance {
		out := rel.NewInstance()
		r, err := cq.GenericJoin(tri, local)
		if err != nil {
			return out
		}
		out.SetRelation(r)
		return out
	}
	if err := hc.Run(round); err != nil {
		return nil, err
	}
	if !hc.Output().Equal(want) {
		res.Pass = false
		res.rowf("hypercube+generic-join WRONG on fan triangle")
	}

	cas, casOut, err := gym.CascadeTriangle(p, fan, 9)
	if err != nil {
		return nil, err
	}
	if !casOut.Filter(func(f rel.Fact) bool { return f.Rel == "H" }).Equal(want) {
		res.Pass = false
		res.rowf("cascade WRONG on fan triangle")
	}
	res.rowf("fan triangle (|R⋈S| = %d, output = %d):", n*n, want.Len())
	res.rowf("  hypercube+WCOJ: rounds=%d totalComm=%d", hc.Rounds(), hc.TotalComm())
	res.rowf("  cascade:        rounds=%d totalComm=%d (ships the fan product)", cas.Rounds(), cas.TotalComm())
	if hc.TotalComm() >= cas.TotalComm() {
		res.Pass = false
	}
	return res, nil
}

// Part 2: small output. A 3-chain with 90% dangling tuples: the
// semijoin-reduced Yannakakis plan ships little; HyperCube must
// still replicate every tuple.
func cellCBSDanglingChain() (*Result, error) {
	res := newResult()
	d := rel.NewDict()
	p := 64
	chain := cq.MustParse(d, "H(a, dd) :- R0(a, b), R1(b, c), R2(c, dd)")
	inst, _ := workload.AcyclicChain(3, 2000, 0.9, 3)
	wantChain := cq.Output(chain, inst)

	g2, err := hypercube.NewOptimalGrid(chain, p, 9)
	if err != nil {
		return nil, err
	}
	hc2 := mpc.NewCluster(g2.P())
	hc2.LoadRoundRobin(inst)
	round2 := hypercube.HyperCubeRound(g2)
	if err := hc2.Run(round2); err != nil {
		return nil, err
	}
	if !hc2.Output().Equal(wantChain) {
		res.Pass = false
		res.rowf("hypercube WRONG on chain")
	}
	yc, yOut, err := gym.DistributedYannakakis(chain, p, inst, 9)
	if err != nil {
		return nil, err
	}
	if !yOut.Equal(wantChain) {
		res.Pass = false
		res.rowf("distributed yannakakis WRONG on chain")
	}
	res.rowf("dangling chain (input = %d, output = %d):", inst.Len(), wantChain.Len())
	res.rowf("  hypercube:  rounds=%d totalComm=%d (replicates everything)", hc2.Rounds(), hc2.TotalComm())
	res.rowf("  yannakakis: rounds=%d totalComm=%d (semijoins first)", yc.Rounds(), yc.TotalComm())
	if yc.TotalComm() >= hc2.TotalComm() {
		res.Pass = false
	}
	return res, nil
}
