package experiments

import (
	"strings"
	"testing"
)

// Every registered experiment must run and PASS: the experiments are
// the repository's executable claims about the paper.
func TestAllExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	exps := All()
	if len(exps) < 12 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	for _, e := range exps {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Pass {
				t.Errorf("experiment failed:\n%s", rep)
			}
			if rep.Claim == "" || len(rep.Rows) == 0 {
				t.Errorf("report incomplete: %+v", rep)
			}
			if !strings.Contains(rep.String(), rep.ID) {
				t.Errorf("report rendering broken")
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("F1-transfer-vs-containment"); !ok {
		t.Errorf("F1 not registered")
	}
	if _, ok := ByID("nope"); ok {
		t.Errorf("phantom experiment found")
	}
}
