package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// The full sweep takes ~20s; share one sequential reference run
// between the pass gate and the byte-identity tests.
var (
	seqOnce    sync.Once
	seqReports []*Report
)

func sequentialReports() []*Report {
	seqOnce.Do(func() {
		seqReports, _ = RunSweep(1, All())
	})
	return seqReports
}

// renderAll is exactly what cmd/experiments writes to stdout.
func renderAll(reports []*Report) string {
	var b strings.Builder
	failed := 0
	for _, rep := range reports {
		fmt.Fprintln(&b, rep)
		if !rep.Pass {
			failed++
		}
	}
	fmt.Fprintf(&b, "%d experiments run, %d failed\n", len(reports), failed)
	return b.String()
}

// Every registered experiment must run and PASS: the experiments are
// the repository's executable claims about the paper.
func TestAllExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	exps := All()
	if len(exps) < 12 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	reports := sequentialReports()
	if len(reports) != len(exps) {
		t.Fatalf("%d experiments produced %d reports", len(exps), len(reports))
	}
	for i, d := range exps {
		rep := reports[i]
		t.Run(d.ID, func(t *testing.T) {
			if !rep.Pass {
				t.Errorf("experiment failed:\n%s", rep)
			}
			if rep.Claim == "" || len(rep.Rows) == 0 {
				t.Errorf("report incomplete: %+v", rep)
			}
			if !strings.Contains(rep.String(), rep.ID) {
				t.Errorf("report rendering broken")
			}
		})
	}
}

// The tentpole invariant: the parallel sweep's rendered output is
// byte-identical to the sequential reference for every worker count —
// the parallel-correctness property, machine-checked on our own
// harness. N covers 1 (the reference itself), 2, and GOMAXPROCS per
// the acceptance criteria, plus 4 so multi-worker merging is
// exercised even on single-core runners.
func TestSweepByteIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	want := renderAll(sequentialReports())
	counts := []int{2, 4, runtime.GOMAXPROCS(0)}
	tried := map[int]bool{1: true}
	for _, workers := range counts {
		if tried[workers] {
			continue
		}
		tried[workers] = true
		reports, stats := RunSweep(workers, All())
		got := renderAll(reports)
		if got != want {
			t.Fatalf("workers=%d output diverged from sequential run\n%s", workers, firstDiff(want, got))
		}
		if stats.ErroredCells != 0 {
			t.Errorf("workers=%d: %d cells errored", workers, stats.ErroredCells)
		}
	}
}

func firstDiff(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  sequential: %q\n  parallel:   %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("length differs: %d vs %d lines", len(wl), len(gl))
}

func TestByID(t *testing.T) {
	if _, ok := ByID("F1-transfer-vs-containment"); !ok {
		t.Errorf("F1 not registered")
	}
	if _, ok := ByID("nope"); ok {
		t.Errorf("phantom experiment found")
	}
}

// Erroring and panicking cells must become failing rows of their own
// experiment — deterministically, and without disturbing siblings.
func TestRunSweepFailureSemantics(t *testing.T) {
	defs := []Def{
		{
			ID: "A-mixed", Name: "A", Title: "mixed", Claim: "c",
			Pre: []string{"header"},
			Cells: []Cell{
				{Params: "ok", Run: func() (*Result, error) {
					res := newResult()
					res.rowf("fine")
					return res, nil
				}},
				{Params: "err", Run: func() (*Result, error) {
					return nil, errors.New("cell exploded")
				}},
				{Params: "panic", Run: func() (*Result, error) {
					panic("cell panicked hard")
				}},
			},
		},
		{
			ID: "B-clean", Name: "B", Title: "clean", Claim: "c",
			Cells: []Cell{{Params: "ok", Run: func() (*Result, error) {
				res := newResult()
				res.rowf("untouched")
				return res, nil
			}}},
		},
	}
	var rendered []string
	for _, workers := range []int{1, 3} {
		reports, stats := RunSweep(workers, defs)
		if len(reports) != 2 {
			t.Fatalf("want 2 reports, got %d", len(reports))
		}
		a, b := reports[0], reports[1]
		if a.Pass {
			t.Errorf("experiment with failing cells passed:\n%s", a)
		}
		if !b.Pass || len(b.Rows) != 1 || b.Rows[0] != "untouched" {
			t.Errorf("sibling experiment disturbed:\n%s", b)
		}
		if a.Rows[0] != "header" || a.Rows[1] != "fine" {
			t.Errorf("pre/ok rows wrong: %q", a.Rows)
		}
		joined := strings.Join(a.Rows, "\n")
		if !strings.Contains(joined, "cell err: error: cell exploded") {
			t.Errorf("error row missing: %q", a.Rows)
		}
		if !strings.Contains(joined, "cell panicked hard") {
			t.Errorf("panic row missing: %q", a.Rows)
		}
		if stats.ErroredCells != 2 {
			t.Errorf("want 2 errored cells, got %d", stats.ErroredCells)
		}
		// Failing cells are retried once (cellRetries), deterministically.
		if stats.Retried != 2*cellRetries {
			t.Errorf("want %d retries, got %d", 2*cellRetries, stats.Retried)
		}
		rendered = append(rendered, renderAll(reports))
	}
	if rendered[0] != rendered[1] {
		t.Errorf("failure rows differ across worker counts:\n%s\nvs\n%s", rendered[0], rendered[1])
	}
}

// The registry must declare unique IDs and well-formed defs; cells
// must have distinct labels within an experiment so error rows are
// unambiguous.
func TestRegistryWellFormed(t *testing.T) {
	ids := map[string]bool{}
	for _, d := range All() {
		if d.ID == "" || d.Name == "" || d.Title == "" || d.Claim == "" {
			t.Errorf("incomplete def: %+v", d)
		}
		if ids[d.ID] {
			t.Errorf("duplicate experiment ID %q", d.ID)
		}
		ids[d.ID] = true
		if len(d.Cells) == 0 {
			t.Errorf("experiment %s has no cells", d.ID)
		}
		params := map[string]bool{}
		for _, c := range d.Cells {
			if c.Params == "" || c.Run == nil {
				t.Errorf("experiment %s has a malformed cell %q", d.ID, c.Params)
			}
			if params[c.Params] {
				t.Errorf("experiment %s reuses cell label %q", d.ID, c.Params)
			}
			params[c.Params] = true
		}
	}
}
