package experiments

import (
	"mpclogic/internal/cq"
	"mpclogic/internal/datalog"
	"mpclogic/internal/mono"
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
	"mpclogic/internal/transducer"
	"mpclogic/internal/workload"
)

// Experiments for the asynchronous half (Section 5): CALM, the
// monotonicity hierarchy of Figure 2, and the coordination-free
// strategies of Theorems 5.3/5.8/5.12.

func init() {
	register(Def{
		ID:    "F2-hierarchy",
		Name:  "F2",
		Title: "Figure 2: M ⊊ Mdistinct ⊊ Mdisjoint with Datalog correspondences",
		Claim: "triangles ∈ M; open-triangle ∈ Mdistinct∖M; ¬TC ∈ Mdisjoint∖Mdistinct; QNT ∉ Mdisjoint; Datalog(≠)⊆M, SP-Datalog⊆Mdistinct, semicon-Datalog⊆Mdisjoint",
		Cells: []Cell{
			{Params: "semantic-classes", Run: cellFigure2Classes},
			{Params: "datalog-fragments", Run: cellFigure2Datalog},
		},
	})
	register(Def{
		ID:    "CALM-theorem",
		Name:  "CALM",
		Title: "CALM theorem (Theorem 5.3): F0 = A0 = M",
		Claim: "monotone queries run coordination-free by naive broadcast; non-monotone ones cannot",
		Cells: []Cell{{Params: "broadcast-vs-coordinated", Run: cellCALM}},
	})
	register(Def{
		ID:    "T58-policy-aware",
		Name:  "T58",
		Title: "Theorem 5.8: F1 = A1 = Mdistinct (policy-aware, Example 5.4)",
		Claim: "with a queryable distribution policy, open-triangle runs correctly on every schedule and coordination-free on the ideal distribution",
		Cells: []Cell{{Params: "open-triangle", Run: cellTheorem58}},
	})
	register(Def{
		ID:    "T512-domain-guided",
		Name:  "T512",
		Title: "Theorem 5.12: F2 = A2 = Mdisjoint (domain-guided)",
		Claim: "¬TC (outside Mdistinct) runs correctly on domain-guided networks, coordination-free on the ideal distribution",
		Cells: []Cell{{Params: "ntc", Run: cellTheorem512}},
	})
	register(Def{
		ID:    "WM-win-move",
		Name:  "WM",
		Title: "win-move is coordination-free on domain-guided networks",
		Claim: "semi-connected programs under well-founded semantics stay domain-disjoint-monotone; win-move distributes over components",
		Cells: []Cell{{Params: "two-components", Run: cellWinMove}},
	})
	register(Def{
		ID:    "BCAST-economical",
		Name:  "BCAST",
		Title: "economical broadcasting (Ketsman-Neven, Section 6)",
		Claim: "transmitting only the facts that can join reduces communication without changing the answer",
		Cells: []Cell{{Params: "naive-vs-economical", Run: cellBroadcast}},
	})
}

func schemaE() rel.Schema { return rel.Schema{"E": 2} }

func universe3() []rel.Value { return []rel.Value{0, 1, 2} }

// Figure 2, semantic half: the hierarchy M ⊊ Mdistinct ⊊ Mdisjoint
// with verified witnesses.
func cellFigure2Classes() (*Result, error) {
	res := newResult()
	d := rel.NewDict()
	tri := cq.MustParse(d, "H(x, y, z) :- E(x, y), E(y, z), E(z, x)")
	open := cq.MustParse(d, "H(x, y, z) :- E(x, y), E(y, z), not E(z, x)")
	queries := []struct {
		name string
		q    mono.Query
		uni  []rel.Value
		want [3]bool // M, Mdistinct, Mdisjoint
	}{
		{"triangles", func(i *rel.Instance) *rel.Instance { return cq.Output(tri, i) }, universe3(), [3]bool{true, true, true}},
		{"open-triangle", func(i *rel.Instance) *rel.Instance { return cq.Output(open, i) }, universe3(), [3]bool{false, true, true}},
		{"¬TC", notTCQuery, universe3(), [3]bool{false, false, true}},
		{"QNT", qntQuery, []rel.Value{0, 1, 2, 3}, [3]bool{false, false, false}},
	}
	res.rowf("%-14s %-6s %-11s %-11s", "query", "M", "Mdistinct", "Mdisjoint")
	for _, c := range queries {
		m, err := mono.IsMonotone(c.q, schemaE(), c.uni)
		if err != nil {
			return nil, err
		}
		dd, err := mono.IsDomainDistinctMonotone(c.q, schemaE(), c.uni)
		if err != nil {
			return nil, err
		}
		dj, err := mono.IsDomainDisjointMonotone(c.q, schemaE(), c.uni)
		if err != nil {
			return nil, err
		}
		res.rowf("%-14s %-6v %-11v %-11v", c.name, m.Holds, dd.Holds, dj.Holds)
		if m.Holds != c.want[0] || dd.Holds != c.want[1] || dj.Holds != c.want[2] {
			res.Pass = false
		}
	}
	return res, nil
}

// Figure 2, syntactic half: the Datalog fragments' placement.
func cellFigure2Datalog() (*Result, error) {
	res := newResult()
	d := rel.NewDict()
	progs := []struct {
		name, src, want string
	}{
		{"Datalog(≠) TC", "TC(x, y) :- E(x, y)\nTC(x, y) :- TC(x, z), E(z, y)", "M"},
		{"SP open-triangle", "H(x, y, z) :- E(x, y), E(y, z), not E(z, x)", "Mdistinct"},
		{"semicon ¬TC", "TC(x, y) :- E(x, y)\nTC(x, y) :- TC(x, z), TC(z, y)\nOUT(x, y) :- ADom(x), ADom(y), not TC(x, y)", "Mdisjoint"},
		{"QNT program", "T(x, y, z) :- E(x, y), E(y, z), E(z, x), y != x, y != z, x != z\nS(x) :- ADom(x), T(u, v, w)\nOUT(x, y) :- E(x, y), not S(x)", ""},
	}
	for _, c := range progs {
		p := datalog.MustParse(d, c.src)
		got := datalog.Classify(p).MonotonicityClass()
		res.rowf("program %-18s → %q", c.name, got)
		if got != c.want {
			res.Pass = false
		}
	}
	return res, nil
}

// CALM theorem (Theorem 5.3): the monotone strategy is
// coordination-free; the naive strategy is unsound for non-monotone
// queries; the coordinated one needs to read messages even on the
// ideal distribution.
func cellCALM() (*Result, error) {
	res := newResult()
	d := rel.NewDict()
	triQ := cq.MustParse(d, "H(x, y, z) :- E(x, y), E(y, z), E(z, x), x != y, y != z, z != x")
	tri := func(i *rel.Instance) *rel.Instance { return cq.Output(triQ, i) }
	openQ := cq.MustParse(d, "H(x, y, z) :- E(x, y), E(y, z), not E(z, x)")
	open := func(i *rel.Instance) *rel.Instance { return cq.Output(openQ, i) }

	g := workload.RandomGraph(10, 25, 5)
	// Monotone: silent run on ideal distribution computes Q.
	n := transducer.New(4, func() transducer.Program { return &transducer.MonotoneBroadcast{Q: tri} }, transducer.WithSeed(1))
	n.LoadReplicated(g)
	st := n.RunSilent()
	okSilent := n.Output().Equal(tri(g)) && st.Delivered == 0
	res.rowf("monotone broadcast, silent ideal run: correct=%v delivered=%d", okSilent, st.Delivered)
	if !okSilent {
		res.Pass = false
	}
	// Non-monotone with naive broadcast: some schedule is unsound.
	closed := rel.MustInstance(d, "E(0,1)", "E(1,2)", "E(2,0)")
	unsound := false
	for seed := int64(0); seed < 20 && !unsound; seed++ {
		nn := transducer.New(3, func() transducer.Program { return &transducer.MonotoneBroadcast{Q: open} }, transducer.WithSeed(seed))
		parts := []*rel.Instance{
			rel.MustInstance(d, "E(0,1)"),
			rel.MustInstance(d, "E(1,2)"),
			rel.MustInstance(d, "E(2,0)"),
		}
		if err := nn.LoadParts(parts); err != nil {
			return nil, err
		}
		if _, err := nn.Run(); err != nil {
			return nil, err
		}
		if !nn.Output().SubsetOf(open(closed)) {
			unsound = true
		}
	}
	res.rowf("naive broadcast on open-triangle: unsound schedule found=%v", unsound)
	if !unsound {
		res.Pass = false
	}
	// Coordinated: correct on all schedules, but blocked when silent.
	// Use a graph with a nonempty open-triangle answer so "no output"
	// is distinguishable from "done".
	openGraph := rel.MustInstance(d, "E(5,6)", "E(6,7)")
	nc := transducer.New(3, func() transducer.Program { return &transducer.Coordinated{Q: open} }, transducer.WithSeed(2))
	nc.LoadReplicated(openGraph)
	nc.RunSilent()
	blocked := !nc.Output().Equal(open(openGraph))
	res.rowf("coordinated protocol, silent ideal run blocked=%v (needs message reads)", blocked)
	if !blocked {
		res.Pass = false
	}
	return res, nil
}

// Theorem 5.8: policy-aware networks compute Mdistinct queries
// coordination-free (Example 5.4's open-triangle program).
func cellTheorem58() (*Result, error) {
	res := newResult()
	d := rel.NewDict()
	openQ := cq.MustParse(d, "H(x, y, z) :- E(x, y), E(y, z), not E(z, x)")
	open := func(i *rel.Instance) *rel.Instance { return cq.Output(openQ, i) }
	g := workload.RandomGraph(9, 20, 11)
	want := open(g)
	p := 4
	pol := &policy.Hash{Nodes: p}
	allOK := true
	for seed := int64(0); seed < 5; seed++ {
		n := transducer.New(p, func() transducer.Program { return &transducer.OpenTriangle{} },
			transducer.WithSeed(seed), transducer.WithPolicy(pol))
		if err := n.LoadPolicy(g, pol); err != nil {
			return nil, err
		}
		if _, err := n.Run(); err != nil {
			return nil, err
		}
		if !n.Output().Equal(want) {
			allOK = false
		}
	}
	res.rowf("open-triangle over hash policy, 5 schedules: all correct=%v (|Q(I)|=%d)", allOK, want.Len())
	repl := &policy.Replicate{Nodes: p}
	n := transducer.New(p, func() transducer.Program { return &transducer.OpenTriangle{} },
		transducer.WithSeed(1), transducer.WithPolicy(repl))
	n.LoadReplicated(g)
	st := n.RunSilent()
	silentOK := n.Output().Equal(want) && st.Delivered == 0
	res.rowf("silent ideal run: correct=%v", silentOK)
	res.Pass = allOK && silentOK
	return res, nil
}

// Theorem 5.12: domain-guided networks compute Mdisjoint queries
// (¬TC) coordination-free.
func cellTheorem512() (*Result, error) {
	res := newResult()
	g := workload.ComponentsGraph(3, 3)
	want := notTCQuery(g)
	p := 4
	pol := &policy.DomainGuided{Nodes: p, DefaultWidth: 1}
	allOK := true
	var totalMsgs int
	for seed := int64(0); seed < 5; seed++ {
		n := transducer.New(p, func() transducer.Program { return &transducer.DisjointComplete{Q: notTCQuery} },
			transducer.WithSeed(seed), transducer.WithPolicy(pol))
		if err := n.LoadPolicy(g, pol); err != nil {
			return nil, err
		}
		st, err := n.Run()
		if err != nil {
			return nil, err
		}
		totalMsgs = st.Sent
		if !n.Output().Equal(want) {
			allOK = false
		}
	}
	res.rowf("¬TC over domain-guided policy, 5 schedules: all correct=%v (|Q(I)|=%d, ~%d msgs/run)", allOK, want.Len(), totalMsgs)
	repl := &policy.DomainGuided{Nodes: p, DefaultWidth: p}
	n := transducer.New(p, func() transducer.Program { return &transducer.DisjointComplete{Q: notTCQuery} },
		transducer.WithSeed(2), transducer.WithPolicy(repl))
	n.LoadReplicated(g)
	st := n.RunSilent()
	silentOK := n.Output().Equal(want) && st.Delivered == 0
	res.rowf("silent ideal run: correct=%v", silentOK)
	res.Pass = allOK && silentOK
	return res, nil
}

// Win-move under well-founded semantics runs on domain-guided networks
// (Zinn-Green-Ludäscher via Section 5.3).
func cellWinMove() (*Result, error) {
	res := newResult()
	d := rel.NewDict()
	prog := datalog.WinMoveProgram(d)
	winQ := func(i *rel.Instance) *rel.Instance {
		// The transducer state stores Move facts; evaluate WF win-move.
		r, err := datalog.WellFounded(prog, i)
		if err != nil {
			return rel.NewInstance()
		}
		return r.True
	}
	// Game over two disjoint components.
	moves := rel.MustInstance(d,
		"Move(0,1)", "Move(1,2)", // chain: 1 won, 0 and 2 lost
		"Move(10,11)", "Move(11,12)", "Move(12,13)", // longer chain
	)
	want := winQ(moves)
	p := 3
	pol := &policy.DomainGuided{Nodes: p, DefaultWidth: 1}
	allOK := true
	for seed := int64(0); seed < 5; seed++ {
		n := transducer.New(p, func() transducer.Program { return &transducer.DisjointComplete{Q: winQ} },
			transducer.WithSeed(seed), transducer.WithPolicy(pol))
		if err := n.LoadPolicy(moves, pol); err != nil {
			return nil, err
		}
		if _, err := n.Run(); err != nil {
			return nil, err
		}
		if !n.Output().Equal(want) {
			allOK = false
		}
	}
	res.rowf("win-move over domain-guided network, 5 schedules: all correct=%v (|Win|=%d)", allOK, want.Len())
	// Win-move distributes over components (bounded check).
	distOK, _ := mono.DistributesOverComponents(winQ, rel.Schema{"Move": 2}, universe3())
	res.rowf("distributes over components (bounded check): %v", distOK)
	res.Pass = allOK && distOK
	return res, nil
}

// Ketsman-Neven economical broadcasting: ship only query-relevant
// facts.
func cellBroadcast() (*Result, error) {
	res := newResult()
	d := rel.NewDict()
	triQ := cq.MustParse(d, "H(x, y, z) :- E(x, y), E(y, z), E(z, x), x != y, y != z, z != x")
	tri := func(i *rel.Instance) *rel.Instance { return cq.Output(triQ, i) }
	g := workload.RandomGraph(10, 24, 13)
	ballast := workload.Zipf("Noise", 300, 50, 1.2, 1)
	full := g.Union(ballast)
	want := tri(full)
	pol := &policy.Hash{Nodes: 3}
	run := func(mk func() transducer.Program) (transducer.Stats, bool, error) {
		n := transducer.New(3, mk, transducer.WithSeed(4))
		if err := n.LoadParts(policy.Distribute(pol, full)); err != nil {
			return transducer.Stats{}, false, err
		}
		st, err := n.Run()
		if err != nil {
			return transducer.Stats{}, false, err
		}
		return st, n.Output().Equal(want), nil
	}
	stN, okN, err := run(func() transducer.Program { return &transducer.MonotoneBroadcast{Q: tri} })
	if err != nil {
		return nil, err
	}
	stE, okE, err := run(func() transducer.Program {
		return &transducer.EconomicalBroadcast{Q: tri, Matches: func(f rel.Fact) bool { return f.Rel == "E" }}
	})
	if err != nil {
		return nil, err
	}
	res.rowf("naive broadcast:      sent=%d correct=%v", stN.Sent, okN)
	res.rowf("economical broadcast: sent=%d correct=%v", stE.Sent, okE)
	res.Pass = okN && okE && stE.Sent < stN.Sent
	return res, nil
}

// notTCQuery is Q¬TC over adom(I).
func notTCQuery(i *rel.Instance) *rel.Instance {
	reach := map[[2]rel.Value]bool{}
	adom := i.ADom().Sorted()
	if e := i.Relation("E"); e != nil {
		e.Each(func(t rel.Tuple) bool {
			reach[[2]rel.Value{t[0], t[1]}] = true
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for ab := range reach {
			for _, c := range adom {
				if reach[[2]rel.Value{ab[1], c}] && !reach[[2]rel.Value{ab[0], c}] {
					reach[[2]rel.Value{ab[0], c}] = true
					changed = true
				}
			}
		}
	}
	out := rel.NewInstance()
	for _, a := range adom {
		for _, b := range adom {
			if !reach[[2]rel.Value{a, b}] {
				out.Add(rel.NewFact("NTC", a, b))
			}
		}
	}
	return out
}

// qntQuery returns E when the graph has no 3-node triangle, else ∅.
func qntQuery(i *rel.Instance) *rel.Instance {
	e := i.Relation("E")
	out := rel.NewInstance()
	if e == nil {
		return out
	}
	hasTri := false
	e.Each(func(t1 rel.Tuple) bool {
		e.Each(func(t2 rel.Tuple) bool {
			if t1[1] != t2[0] {
				return true
			}
			if e.Contains(rel.Tuple{t2[1], t1[0]}) &&
				t1[0] != t1[1] && t2[0] != t2[1] && t2[1] != t1[0] {
				hasTri = true
				return false
			}
			return true
		})
		return !hasTri
	})
	if hasTri {
		return out
	}
	e.Each(func(t rel.Tuple) bool {
		out.Add(rel.Fact{Rel: "E", Tuple: t})
		return true
	})
	return out
}
