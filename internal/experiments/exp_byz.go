package experiments

import (
	"errors"
	"fmt"

	"mpclogic/internal/mpc"
)

// BYZ extends the failure model beyond crash-stop (PR 9): servers that
// mis-route, forge, or selectively drop facts while staying alive. The
// claim is the routing-integrity invariant — every plan in the seeded
// Byzantine matrix either recovers to a byte-identical output and
// logical trace (transient corruption: audited and quarantined) or
// fails with a typed RoutingIntegrityError naming the accused server
// and a Fact.Less-minimal witness (persistent compromise). A run that
// succeeds with different bytes would be a silent integrity breach and
// fails the cell.

func init() {
	register(Def{
		ID:    "BYZ-matrix",
		Name:  "BYZ",
		Title: "Byzantine routing faults (misroute, forge, selective omission) under receiver-side verification",
		Claim: "every plan in the seeded Byzantine matrix either yields byte-identical output and logical trace after audit-and-quarantine, or fails with a typed RoutingIntegrityError naming a minimal witness and the accused server — never a silently divergent success",
		Cells: []Cell{
			{Params: "hypercube-triangle", Run: cellByzMatrix("hypercube-triangle")},
			{Params: "gym-triangle", Run: cellByzMatrix("gym-triangle")},
			{Params: "skew-two-round", Run: cellByzMatrix("skew-two-round")},
		},
	})
}

// cellByzMatrix runs one algorithm under every plan of the seeded
// Byzantine matrix and checks the two-outcome invariant against its
// fault-free run.
func cellByzMatrix(name string) func() (*Result, error) {
	return func() (*Result, error) {
		res := newResult()
		a, err := newFaultAlgo(name)
		if err != nil {
			return nil, err
		}
		base, baseOut, err := a.run()
		if err != nil {
			return nil, err
		}
		matrix := mpc.ByzantineFaultMatrix(2026, base.Rounds(), a.p)
		quarantined, accusations := 0, 0
		holds := true
		for _, np := range matrix {
			c, out, err := a.run(mpc.WithByzantinePlan(np.Plan))
			if err != nil {
				var rie *mpc.RoutingIntegrityError
				// An untyped failure, or an escalation on a plan the audit
				// must heal, breaks the invariant.
				if !errors.As(err, &rie) || np.Recoverable {
					return nil, fmt.Errorf("%s under %s: %w", a.name, np.Name, err)
				}
				accusations++
				continue
			}
			if out.String() != baseOut.String() || c.LogicalTrace() != base.LogicalTrace() {
				holds = false
			}
			quarantined += c.RecoveryTotals().Quarantined
		}
		res.rowf("%-18s p=%-3d rounds=%d plans=%d invariant=%v  Σ(quarantined=%d accusations=%d)",
			a.name, a.p, base.Rounds(), len(matrix), holds, quarantined, accusations)
		// The invariant must hold AND must not be vacuous: the matrix has
		// to have actually quarantined a liar and proved a compromise.
		res.Pass = res.Pass && holds && quarantined > 0 && accusations > 0
		return res, nil
	}
}
