package experiments

import (
	"fmt"
	"sort"

	"mpclogic/internal/cq"
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
	"mpclogic/internal/transducer"
	"mpclogic/internal/workload"
)

// Experiments for the schedule quantifier itself: the theorems of
// Section 5 claim correctness under EVERY message schedule, with
// arbitrary delay and duplication. SCHED discharges the quantifier
// exhaustively on small networks; CHAOS samples it adversarially on
// larger ones, with fault injection the explorer deliberately
// excludes.

func init() {
	register("SCHED-exhaustive", expExhaustiveSchedules)
	register("CHAOS-matrix", expChaosMatrix)
}

// expExhaustiveSchedules enumerates every delivery order (modulo the
// explorer's sound reductions) and checks the quiescent outputs:
// Example 5.4's open-triangle program and the domain-guided ¬TC
// strategy must be schedule-deterministic and correct; naive broadcast
// of a non-monotone query must be wrong on every schedule, in
// schedule-dependent ways. The ¬TC instance here is deliberately
// larger than the unit tests': ~46k distinct global states, a scale
// that belongs in the experiment budget rather than `go test`.
func expExhaustiveSchedules() (*Report, error) {
	rep := &Report{
		ID:    "SCHED",
		Title: "exhaustive schedule exploration (Theorems 5.8/5.12, Example 5.1(2))",
		Claim: "policy-aware and domain-guided strategies compute Q on every schedule; naive broadcast of a non-monotone query is wrong on every schedule",
		Pass:  true,
	}
	d := rel.NewDict()
	openQ := cq.MustParse(d, "H(x, y, z) :- E(x, y), E(y, z), not E(z, x)")
	open := func(i *rel.Instance) *rel.Instance { return cq.Output(openQ, i) }

	// Example 5.4: open triangle over a hash policy, p = 2 and 3.
	g := rel.MustInstance(d, "E(1,2)", "E(2,3)", "E(3,1)", "E(2,4)")
	for _, p := range []int{2, 3} {
		pol := &policy.Hash{Nodes: p}
		n := transducer.New(p, func() transducer.Program { return &transducer.OpenTriangle{} },
			transducer.WithPolicy(pol))
		if err := n.LoadPolicy(g, pol); err != nil {
			return nil, err
		}
		res, err := transducer.Explore(n, 2_000_000)
		if err != nil {
			return nil, err
		}
		ok := res.Deterministic() && res.Outputs[0] == open(g).String()
		rep.rowf("open-triangle p=%d: states=%d transitions=%d quiescent=%d memo=%d sleep=%d correct-on-all=%v",
			p, res.States, res.Transitions, res.Quiescent, res.MemoHits, res.SleepPrunes, ok)
		rep.Pass = rep.Pass && ok
	}

	// ¬TC over the domain-guided policy, p=3 with three singleton
	// components: the 46k-state exploration.
	g2 := rel.MustInstance(d, "E(0,0)", "E(1,1)", "E(2,2)")
	pol := &policy.DomainGuided{Nodes: 3, DefaultWidth: 1}
	n := transducer.New(3, func() transducer.Program { return &transducer.DisjointComplete{Q: notTCQuery} },
		transducer.WithPolicy(pol))
	if err := n.LoadPolicy(g2, pol); err != nil {
		return nil, err
	}
	res, err := transducer.Explore(n, 2_000_000)
	if err != nil {
		return nil, err
	}
	ok := res.Deterministic() && res.Outputs[0] == notTCQuery(g2).String()
	rep.rowf("¬TC domain-guided p=3: states=%d transitions=%d quiescent=%d memo=%d sleep=%d correct-on-all=%v",
		res.States, res.Transitions, res.Quiescent, res.MemoHits, res.SleepPrunes, ok)
	rep.Pass = rep.Pass && ok

	// Example 5.1(2): naive broadcast of the open-triangle query on a
	// closed triangle split one edge per node — wrong on EVERY
	// schedule, and which wrong answer depends on the schedule.
	nb := transducer.New(3, func() transducer.Program { return &transducer.MonotoneBroadcast{Q: open} })
	parts := []*rel.Instance{
		rel.MustInstance(d, "E(0,1)"),
		rel.MustInstance(d, "E(1,2)"),
		rel.MustInstance(d, "E(2,0)"),
	}
	if err := nb.LoadParts(parts); err != nil {
		return nil, err
	}
	wres, err := transducer.Explore(nb, 1_000_000)
	if err != nil {
		return nil, err
	}
	allWrong := true
	for _, out := range wres.Outputs {
		if out == "{}" {
			allWrong = false
		}
	}
	witnessOK := allWrong && !wres.Deterministic()
	rep.rowf("naive broadcast witness: states=%d quiescent=%d distinct-wrong-outputs=%d all-schedules-wrong=%v",
		wres.States, wres.Quiescent, len(wres.Outputs), witnessOK)
	rep.Pass = rep.Pass && witnessOK
	return rep, nil
}

// expChaosMatrix runs every Section 5 strategy under every scheduler
// in the matrix with duplication, delay bursts, and a mid-run
// crash-restart all enabled, and verifies the centralized answer
// survives. This is the regime the model actually promises: arbitrary
// delay AND duplication AND nodes that lose their volatile state.
func expChaosMatrix() (*Report, error) {
	rep := &Report{
		ID:    "CHAOS",
		Title: "scheduler × fault matrix (arbitrary delay, duplication, crash-restart)",
		Claim: "every Section 5 strategy computes Q under every scheduler with duplication and crash-restart enabled",
		Pass:  true,
	}
	d := rel.NewDict()
	triQ := cq.MustParse(d, "H(x, y, z) :- E(x, y), E(y, z), E(z, x), x != y, y != z, z != x")
	tri := func(i *rel.Instance) *rel.Instance { return cq.Output(triQ, i) }
	openQ := cq.MustParse(d, "H(x, y, z) :- E(x, y), E(y, z), not E(z, x)")
	open := func(i *rel.Instance) *rel.Instance { return cq.Output(openQ, i) }
	g := workload.RandomGraph(9, 20, 7)
	g3 := workload.ComponentsGraph(3, 3)
	const p = 3

	strategies := []struct {
		name string
		want string
		mk   func(opts []transducer.Option) (*transducer.Network, error)
	}{
		{"monotone-broadcast", tri(g).String(), func(opts []transducer.Option) (*transducer.Network, error) {
			n := transducer.New(p, func() transducer.Program { return &transducer.MonotoneBroadcast{Q: tri} }, opts...)
			return n, n.LoadParts(policy.Distribute(&policy.Hash{Nodes: p}, g))
		}},
		{"coordinated", open(g).String(), func(opts []transducer.Option) (*transducer.Network, error) {
			n := transducer.New(p, func() transducer.Program { return &transducer.Coordinated{Q: open} }, opts...)
			return n, n.LoadParts(policy.Distribute(&policy.Hash{Nodes: p}, g))
		}},
		{"open-triangle-aware", open(g).String(), func(opts []transducer.Option) (*transducer.Network, error) {
			pol := &policy.Hash{Nodes: p}
			n := transducer.New(p, func() transducer.Program { return &transducer.OpenTriangle{} },
				append(opts, transducer.WithPolicy(pol))...)
			return n, n.LoadPolicy(g, pol)
		}},
		{"disjoint-complete", notTCQuery(g3).String(), func(opts []transducer.Option) (*transducer.Network, error) {
			pol := &policy.DomainGuided{Nodes: p, DefaultWidth: 1}
			n := transducer.New(p, func() transducer.Program { return &transducer.DisjointComplete{Q: notTCQuery} },
				append(opts, transducer.WithPolicy(pol))...)
			return n, n.LoadPolicy(g3, pol)
		}},
	}

	scheds := transducer.SchedulerMatrix(p, 23)
	names := make([]string, 0, len(scheds))
	for name := range scheds {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, s := range strategies {
		allOK := true
		var agg transducer.Stats
		for _, schedName := range names {
			// Schedulers are stateful: rebuild the matrix per run.
			n, err := s.mk([]transducer.Option{
				transducer.WithScheduler(transducer.SchedulerMatrix(p, 23)[schedName]),
				transducer.WithDuplication(2, 41),
				transducer.WithDelayBursts(5, 3, 19),
				transducer.WithCrashRestart(1, 6),
			})
			if err != nil {
				return nil, err
			}
			st, err := n.Run()
			if err != nil {
				return nil, fmt.Errorf("%s under %s: %w", s.name, schedName, err)
			}
			agg.Sent += st.Sent
			agg.Delivered += st.Delivered
			agg.Duplicated += st.Duplicated
			agg.Bursts += st.Bursts
			agg.Crashes += st.Crashes
			agg.Assists += st.Assists
			if n.Output().String() != s.want {
				allOK = false
			}
		}
		rep.rowf("%-20s schedulers=%d correct=%v  Σ(sent=%d delivered=%d dup=%d bursts=%d crashes=%d assists=%d)",
			s.name, len(names), allOK, agg.Sent, agg.Delivered, agg.Duplicated, agg.Bursts, agg.Crashes, agg.Assists)
		rep.Pass = rep.Pass && allOK && agg.Duplicated > 0 && agg.Crashes == len(names)
	}
	return rep, nil
}
