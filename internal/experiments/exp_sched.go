package experiments

import (
	"fmt"
	"sort"

	"mpclogic/internal/cq"
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
	"mpclogic/internal/transducer"
	"mpclogic/internal/workload"
)

// Experiments for the schedule quantifier itself: the theorems of
// Section 5 claim correctness under EVERY message schedule, with
// arbitrary delay and duplication. SCHED discharges the quantifier
// exhaustively on small networks; CHAOS samples it adversarially on
// larger ones, with fault injection the explorer deliberately
// excludes. Both are matrices of independent runs, so they split into
// cells: each exploration target and each CHAOS strategy is its own
// sweep job.

func init() {
	register(Def{
		ID:    "SCHED-exhaustive",
		Name:  "SCHED",
		Title: "exhaustive schedule exploration (Theorems 5.8/5.12, Example 5.1(2))",
		Claim: "policy-aware and domain-guided strategies compute Q on every schedule; naive broadcast of a non-monotone query is wrong on every schedule",
		Cells: []Cell{
			{Params: "open-triangle-p2+p3", Run: cellSchedOpenTriangle},
			{Params: "ntc-46k-states", Run: cellSchedNTC},
			{Params: "naive-broadcast", Run: cellSchedNaiveBroadcast},
		},
	})
	register(Def{
		ID:    "CHAOS-matrix",
		Name:  "CHAOS",
		Title: "scheduler × fault matrix (arbitrary delay, duplication, crash-restart)",
		Claim: "every Section 5 strategy computes Q under every scheduler with duplication and crash-restart enabled",
		Cells: []Cell{
			{Params: "monotone-broadcast", Run: cellChaosStrategy("monotone-broadcast")},
			{Params: "coordinated", Run: cellChaosStrategy("coordinated")},
			{Params: "open-triangle-aware", Run: cellChaosStrategy("open-triangle-aware")},
			{Params: "disjoint-complete", Run: cellChaosStrategy("disjoint-complete")},
		},
	})
}

// Example 5.4: open triangle over a hash policy, p = 2 and 3, every
// delivery order enumerated (modulo the explorer's sound reductions).
func cellSchedOpenTriangle() (*Result, error) {
	res := newResult()
	d := rel.NewDict()
	openQ := cq.MustParse(d, "H(x, y, z) :- E(x, y), E(y, z), not E(z, x)")
	open := func(i *rel.Instance) *rel.Instance { return cq.Output(openQ, i) }
	g := rel.MustInstance(d, "E(1,2)", "E(2,3)", "E(3,1)", "E(2,4)")
	for _, p := range []int{2, 3} {
		pol := &policy.Hash{Nodes: p}
		n := transducer.New(p, func() transducer.Program { return &transducer.OpenTriangle{} },
			transducer.WithPolicy(pol))
		if err := n.LoadPolicy(g, pol); err != nil {
			return nil, err
		}
		r, err := transducer.Explore(n, 2_000_000)
		if err != nil {
			return nil, err
		}
		ok := r.Deterministic() && r.Outputs[0] == open(g).String()
		res.rowf("open-triangle p=%d: states=%d transitions=%d quiescent=%d memo=%d sleep=%d correct-on-all=%v",
			p, r.States, r.Transitions, r.Quiescent, r.MemoHits, r.SleepPrunes, ok)
		res.Pass = res.Pass && ok
	}
	return res, nil
}

// ¬TC over the domain-guided policy, p=3 with three singleton
// components: the 46k-state exploration, deliberately larger than the
// unit tests' — a scale that belongs in the experiment budget rather
// than `go test`.
func cellSchedNTC() (*Result, error) {
	res := newResult()
	d := rel.NewDict()
	g2 := rel.MustInstance(d, "E(0,0)", "E(1,1)", "E(2,2)")
	pol := &policy.DomainGuided{Nodes: 3, DefaultWidth: 1}
	n := transducer.New(3, func() transducer.Program { return &transducer.DisjointComplete{Q: notTCQuery} },
		transducer.WithPolicy(pol))
	if err := n.LoadPolicy(g2, pol); err != nil {
		return nil, err
	}
	r, err := transducer.Explore(n, 2_000_000)
	if err != nil {
		return nil, err
	}
	ok := r.Deterministic() && r.Outputs[0] == notTCQuery(g2).String()
	res.rowf("¬TC domain-guided p=3: states=%d transitions=%d quiescent=%d memo=%d sleep=%d correct-on-all=%v",
		r.States, r.Transitions, r.Quiescent, r.MemoHits, r.SleepPrunes, ok)
	res.Pass = res.Pass && ok
	return res, nil
}

// Example 5.1(2): naive broadcast of the open-triangle query on a
// closed triangle split one edge per node — wrong on EVERY schedule,
// and which wrong answer depends on the schedule.
func cellSchedNaiveBroadcast() (*Result, error) {
	res := newResult()
	d := rel.NewDict()
	openQ := cq.MustParse(d, "H(x, y, z) :- E(x, y), E(y, z), not E(z, x)")
	open := func(i *rel.Instance) *rel.Instance { return cq.Output(openQ, i) }
	nb := transducer.New(3, func() transducer.Program { return &transducer.MonotoneBroadcast{Q: open} })
	parts := []*rel.Instance{
		rel.MustInstance(d, "E(0,1)"),
		rel.MustInstance(d, "E(1,2)"),
		rel.MustInstance(d, "E(2,0)"),
	}
	if err := nb.LoadParts(parts); err != nil {
		return nil, err
	}
	wres, err := transducer.Explore(nb, 1_000_000)
	if err != nil {
		return nil, err
	}
	allWrong := true
	for _, out := range wres.Outputs {
		if out == "{}" {
			allWrong = false
		}
	}
	witnessOK := allWrong && !wres.Deterministic()
	res.rowf("naive broadcast witness: states=%d quiescent=%d distinct-wrong-outputs=%d all-schedules-wrong=%v",
		wres.States, wres.Quiescent, len(wres.Outputs), witnessOK)
	res.Pass = res.Pass && witnessOK
	return res, nil
}

// cellChaosStrategy runs one Section 5 strategy under every scheduler
// in the matrix with duplication, delay bursts, and a mid-run
// crash-restart all enabled, and verifies the centralized answer
// survives. This is the regime the model actually promises: arbitrary
// delay AND duplication AND nodes that lose their volatile state.
func cellChaosStrategy(name string) func() (*Result, error) {
	return func() (*Result, error) {
		res := newResult()
		d := rel.NewDict()
		triQ := cq.MustParse(d, "H(x, y, z) :- E(x, y), E(y, z), E(z, x), x != y, y != z, z != x")
		tri := func(i *rel.Instance) *rel.Instance { return cq.Output(triQ, i) }
		openQ := cq.MustParse(d, "H(x, y, z) :- E(x, y), E(y, z), not E(z, x)")
		open := func(i *rel.Instance) *rel.Instance { return cq.Output(openQ, i) }
		g := workload.RandomGraph(9, 20, 7)
		g3 := workload.ComponentsGraph(3, 3)
		const p = 3

		var want string
		var mk func(opts []transducer.Option) (*transducer.Network, error)
		switch name {
		case "monotone-broadcast":
			want = tri(g).String()
			mk = func(opts []transducer.Option) (*transducer.Network, error) {
				n := transducer.New(p, func() transducer.Program { return &transducer.MonotoneBroadcast{Q: tri} }, opts...)
				return n, n.LoadParts(policy.Distribute(&policy.Hash{Nodes: p}, g))
			}
		case "coordinated":
			want = open(g).String()
			mk = func(opts []transducer.Option) (*transducer.Network, error) {
				n := transducer.New(p, func() transducer.Program { return &transducer.Coordinated{Q: open} }, opts...)
				return n, n.LoadParts(policy.Distribute(&policy.Hash{Nodes: p}, g))
			}
		case "open-triangle-aware":
			want = open(g).String()
			mk = func(opts []transducer.Option) (*transducer.Network, error) {
				pol := &policy.Hash{Nodes: p}
				n := transducer.New(p, func() transducer.Program { return &transducer.OpenTriangle{} },
					append(opts, transducer.WithPolicy(pol))...)
				return n, n.LoadPolicy(g, pol)
			}
		case "disjoint-complete":
			want = notTCQuery(g3).String()
			mk = func(opts []transducer.Option) (*transducer.Network, error) {
				pol := &policy.DomainGuided{Nodes: p, DefaultWidth: 1}
				n := transducer.New(p, func() transducer.Program { return &transducer.DisjointComplete{Q: notTCQuery} },
					append(opts, transducer.WithPolicy(pol))...)
				return n, n.LoadPolicy(g3, pol)
			}
		default:
			return nil, fmt.Errorf("unknown chaos strategy %q", name)
		}

		scheds := transducer.SchedulerMatrix(p, 23)
		names := make([]string, 0, len(scheds))
		for schedName := range scheds {
			names = append(names, schedName)
		}
		sort.Strings(names)

		allOK := true
		var agg transducer.Stats
		for _, schedName := range names {
			// Schedulers are stateful: rebuild the matrix per run.
			n, err := mk([]transducer.Option{
				transducer.WithScheduler(transducer.SchedulerMatrix(p, 23)[schedName]),
				transducer.WithDuplication(2, 41),
				transducer.WithDelayBursts(5, 3, 19),
				transducer.WithCrashRestart(1, 6),
			})
			if err != nil {
				return nil, err
			}
			st, err := n.Run()
			if err != nil {
				return nil, fmt.Errorf("%s under %s: %w", name, schedName, err)
			}
			agg.Sent += st.Sent
			agg.Delivered += st.Delivered
			agg.Duplicated += st.Duplicated
			agg.Bursts += st.Bursts
			agg.Crashes += st.Crashes
			agg.Assists += st.Assists
			if n.Output().String() != want {
				allOK = false
			}
		}
		res.rowf("%-20s schedulers=%d correct=%v  Σ(sent=%d delivered=%d dup=%d bursts=%d crashes=%d assists=%d)",
			name, len(names), allOK, agg.Sent, agg.Delivered, agg.Duplicated, agg.Bursts, agg.Crashes, agg.Assists)
		res.Pass = res.Pass && allOK && agg.Duplicated > 0 && agg.Crashes == len(names)
		return res, nil
	}
}
