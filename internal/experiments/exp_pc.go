package experiments

import (
	"fmt"

	"mpclogic/internal/cq"
	"mpclogic/internal/pc"
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
)

// Experiments for Section 4: parallel-correctness, Figure 1, and the
// complexity shadows of Theorems 4.8/4.9/4.14.

func init() {
	register(Def{
		ID:    "F1-transfer-vs-containment",
		Name:  "F1",
		Title: "Figure 1: parallel-correctness transfer vs containment (Example 4.11)",
		Claim: "transfer and containment are orthogonal: all four (transfer, containment) combinations occur",
		Pre:   []string{fmt.Sprintf("%-10s %-16s %-14s", "pair", "pc-transfer", "containment")},
		Cells: []Cell{{Params: "q1..q4", Run: cellFigure1}},
	})
	register(Def{
		ID:    "E41-distributed-eval",
		Name:  "E41",
		Title: "Example 4.1: one-round distributed evaluation [Q,P](I)",
		Claim: "under P1 the result equals Qe(Ie) = {H(a,a), H(a,c)} (the paper's {H(a,b)} is a typo for {H(a,a)}); under P2 it is empty",
		Cells: []Cell{{Params: "p1+p2", Run: cellExample41}},
	})
	register(Def{
		ID:    "E43-pc0-vs-pc1",
		Name:  "E43",
		Title: "Example 4.3: PC0 insufficient, PC1 characterizes (Prop. 4.6)",
		Claim: "the 2-node policy separating R(a,b) and R(b,a) violates PC0 yet Q is parallel-correct",
		Cells: []Cell{{Params: "split-policy", Run: cellExample43}},
	})
	register(Def{
		ID:    "T48-pc-complexity",
		Name:  "T48",
		Title: "parallel-correctness decision cost (Theorem 4.8: Πᵖ₂-complete)",
		Claim: "decision cost grows exponentially with universe size and query arity",
		Pre:   []string{fmt.Sprintf("%-12s %-12s %-18s %-14s", "|universe|", "candidates", "minimal checked", "facts tested")},
		Cells: []Cell{{Params: "n=2,4,8", Run: cellPCComplexity}},
	})
	register(Def{
		ID:    "CQNEG-soundness-completeness",
		Name:  "CQNEG",
		Title: "CQ¬ parallel-correctness = soundness ∧ completeness (Theorem 4.9)",
		Claim: "for non-monotone queries, distribution can create spurious facts (unsoundness) or lose facts (incompleteness)",
		Cells: []Cell{
			{Params: "policies", Run: cellCQNegPolicies},
			{Params: "containment", Run: cellCQNegContainment},
		},
	})
}

// Figure 1: the 4×4 transfer and containment matrices over Q1–Q4 of
// Example 4.11 are orthogonal.
func cellFigure1() (*Result, error) {
	res := newResult()
	d := rel.NewDict()
	qs := []*cq.CQ{
		cq.MustParse(d, "H() :- S(x), R(x, x), T(x)"),
		cq.MustParse(d, "H() :- R(x, x), T(x)"),
		cq.MustParse(d, "H() :- S(x), R(x, y), T(y)"),
		cq.MustParse(d, "H() :- R(x, y), T(y)"),
	}
	names := []string{"Q1", "Q2", "Q3", "Q4"}
	combos := map[[2]bool]bool{}
	for i, qi := range qs {
		for j, qj := range qs {
			if i == j {
				continue
			}
			tr, _, err := pc.Transfers(qi, qj)
			if err != nil {
				return nil, err
			}
			cn, err := cq.Contained(qi, qj)
			if err != nil {
				return nil, err
			}
			res.rowf("%s→%s      %-16v %-14v", names[i], names[j], tr, cn)
			combos[[2]bool{tr, cn}] = true
		}
	}
	if len(combos) != 4 {
		res.Pass = false
	}
	return res, nil
}

// Example 4.1: the distributed one-round evaluation under P1 and P2.
func cellExample41() (*Result, error) {
	res := newResult()
	d := rel.NewDict()
	qe := cq.MustParse(d, "H(x1, x3) :- R(x1, x2), R(x2, x3), S(x3, x1)")
	ie := rel.MustInstance(d, "R(a,b)", "R(b,a)", "R(b,c)", "S(a,a)", "S(c,a)")
	p1 := &policy.Func{
		Nodes: 2,
		Resp: func(κ policy.Node, f rel.Fact) bool {
			if f.Rel == "R" {
				return true
			}
			if f.Tuple[0] == f.Tuple[1] {
				return κ == 0
			}
			return κ == 1
		},
	}
	p2 := &policy.Func{
		Nodes: 2,
		Resp: func(κ policy.Node, f rel.Fact) bool {
			if f.Rel == "R" {
				return κ == 0
			}
			return κ == 1
		},
	}
	full := cq.Output(qe, ie)
	under1 := pc.DistributedEval(qe, p1, ie)
	under2 := pc.DistributedEval(qe, p2, ie)
	res.rowf("Qe(Ie)      = %s", full.StringWith(d))
	res.rowf("[Qe,P1](Ie) = %s", under1.StringWith(d))
	res.rowf("[Qe,P2](Ie) = %s", under2.StringWith(d))
	if !under1.Equal(full) || under2.Len() != 0 {
		res.Pass = false
	}
	return res, nil
}

// Example 4.3: (PC0) fails, (PC1) holds, and the query is
// parallel-correct (Proposition 4.6 in action).
func cellExample43() (*Result, error) {
	res := newResult()
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, z) :- R(x, y), R(y, z), R(x, x)")
	ab := rel.MustFact(d, "R(a,b)")
	ba := rel.MustFact(d, "R(b,a)")
	pol := &policy.Func{
		Nodes: 2,
		Resp: func(κ policy.Node, f rel.Fact) bool {
			if κ == 0 {
				return !f.Equal(ab)
			}
			return !f.Equal(ba)
		},
		Univ: d.Values("a", "b"),
	}
	strong, w0, err := pc.StronglySaturates(q, pol, nil)
	if err != nil {
		return nil, err
	}
	sat, _, err := pc.Saturates(q, pol, nil)
	if err != nil {
		return nil, err
	}
	res.rowf("PC0 (strong saturation): %v  (witness: %v)", strong, w0)
	res.rowf("PC1 (saturation):        %v", sat)
	if strong || !sat {
		res.Pass = false
	}
	return res, nil
}

// Theorem 4.8's complexity shadow: the exact PC decision scales
// exponentially in query/universe size (the problem is Πᵖ₂-complete).
// Cost is measured in deterministic work units — candidate valuations
// (|U|^|vars|), minimal valuations actually checked, and required
// facts tested against the policy — so the emitted rows are a pure
// function of the inputs rather than wall-clock samples.
func cellPCComplexity() (*Result, error) {
	res := newResult()
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, z) :- R(x, y), R(y, z), R(x, x)")
	nvars := len(q.Vars())
	var minimal []int
	for _, n := range []int{2, 4, 8} {
		u := make([]rel.Value, n)
		for i := range u {
			u[i] = rel.Value(i)
		}
		// Replication saturates every query, so the decision must scan
		// every minimal valuation — the full Πᵖ₂-shaped search.
		pol := &policy.Replicate{Nodes: 2}
		ok, _, err := pc.Saturates(q, pol, u)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("replication failed to saturate")
		}
		// Replay the same search shape the decision procedure walks,
		// counting its work: every minimal valuation must be visited
		// and its required facts tested for a meeting node.
		candidates := 1
		for i := 0; i < nvars; i++ {
			candidates *= n
		}
		checked, tested := 0, 0
		err = cq.EachMinimalValuation(q, u, func(v cq.Valuation) bool {
			checked++
			facts := v.RequiredFacts(q)
			tested += len(facts)
			if !policy.MeetsAtSomeNode(pol, facts) {
				return false
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		minimal = append(minimal, checked)
		res.rowf("%-12d %-12d %-18d %-14d", n, candidates, checked, tested)
	}
	// Exponential growth: quadrupling the universe must multiply the
	// number of minimal valuations the decision scans far beyond 4×.
	if minimal[2] < 8*minimal[0] {
		res.Pass = false
	}
	return res, nil
}

// Theorem 4.9 territory: CQ¬ correctness splits into soundness and
// completeness, each independently violable.
func cellCQNegPolicies() (*Result, error) {
	res := newResult()
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x) :- R(x), not S(x)")
	loseS := &policy.Func{Nodes: 2, Resp: func(_ policy.Node, f rel.Fact) bool { return f.Rel == "R" }}
	loseR := &policy.Func{Nodes: 2, Resp: func(_ policy.Node, f rel.Fact) bool { return f.Rel == "S" }}
	repl := &policy.Replicate{Nodes: 2}

	r1, err := pc.ParallelCorrectNegBounded(q, loseS, 2)
	if err != nil {
		return nil, err
	}
	r2, err := pc.ParallelCorrectNegBounded(q, loseR, 2)
	if err != nil {
		return nil, err
	}
	r3, err := pc.ParallelCorrectNegBounded(q, repl, 2)
	if err != nil {
		return nil, err
	}
	res.rowf("policy 'drop S':   %v  (S invisible → spurious H)", r1)
	res.rowf("policy 'drop R':   %v  (R lost → missing H)", r2)
	res.rowf("full replication:  %v", r3)
	if r1.Sound || !r2.Sound || r2.Complete || !r3.Correct() {
		res.Pass = false
	}
	return res, nil
}

// Containment for CQ¬ via bounded counterexample search.
func cellCQNegContainment() (*Result, error) {
	res := newResult()
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x) :- R(x), not S(x)")
	qp := cq.MustParse(d, "H(x) :- R(x)")
	ok1, _, err := cq.ContainedNegBounded(q, qp, 2)
	if err != nil {
		return nil, err
	}
	ok2, wit, err := cq.ContainedNegBounded(qp, q, 2)
	if err != nil {
		return nil, err
	}
	res.rowf("R∧¬S ⊆ R: %v;  R ⊆ R∧¬S: %v (witness %v)", ok1, ok2, wit)
	if !ok1 || ok2 {
		res.Pass = false
	}
	return res, nil
}
