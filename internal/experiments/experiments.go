// Package experiments regenerates every checkable artifact of the
// paper — both figures, all numbered examples, and the quantitative
// load-bound claims of Sections 3–5 — as self-verifying experiments.
// Each experiment prints the paper's claim next to what this
// implementation measures and judges whether the claim's *shape*
// holds. The cmd/experiments binary runs them; EXPERIMENTS.md records
// their output.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Report is one experiment's outcome.
type Report struct {
	ID    string
	Title string
	Claim string // what the paper asserts
	Rows  []string
	Pass  bool
}

func (r *Report) String() string {
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s [%s]\n", r.ID, r.Title, status)
	fmt.Fprintf(&b, "   paper: %s\n", r.Claim)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "   %s\n", row)
	}
	return b.String()
}

func (r *Report) rowf(format string, args ...any) {
	r.Rows = append(r.Rows, fmt.Sprintf(format, args...))
}

// timed runs fn reps times and returns the mean wall-clock duration.
// It is the only sanctioned use of the clock in this package: timing
// is measurement-only, so callers must establish the correctness of
// fn's result *outside* the timed region — the duration may appear in
// a report row, but no emitted verdict may depend on it.
func timed(reps int, fn func() error) (time.Duration, error) {
	start := time.Now() //lint:allow wallclock-free measurement-layer stopwatch
	for i := 0; i < reps; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(reps), nil //lint:allow wallclock-free measurement-layer stopwatch
}

// Experiment is a named, runnable reproduction unit.
type Experiment struct {
	ID  string
	Run func() (*Report, error)
}

var registry []Experiment

func register(id string, run func() (*Report, error)) {
	registry = append(registry, Experiment{ID: id, Run: run})
}

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment and returns the reports in ID
// order; execution continues past failures.
func RunAll() ([]*Report, error) {
	var out []*Report
	for _, e := range All() {
		rep, err := e.Run()
		if err != nil {
			return out, fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		out = append(out, rep)
	}
	return out, nil
}
