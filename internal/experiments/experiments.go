// Package experiments regenerates every checkable artifact of the
// paper — both figures, all numbered examples, and the quantitative
// load-bound claims of Sections 3–5 — as self-verifying experiments.
// Each experiment prints the paper's claim next to what this
// implementation measures and judges whether the claim's *shape*
// holds. The cmd/experiments binary runs them; EXPERIMENTS.md records
// their output.
//
// Experiments are declared as Defs: a header (ID, title, claim) plus a
// list of Cells, one per independent parameter point. Cells from all
// experiments are flattened into one job list and executed by the
// internal/sweep worker pool; because cell closures are deterministic
// and sweep merges results in declared order, the rendered output of
// RunSweep(workers) is byte-identical for every worker count.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mpclogic/internal/sweep"
)

// cellRetries is the fixed per-cell retry budget. Cells are
// deterministic, so a retry only matters for panics with an external
// cause; keeping the budget fixed keeps Attempts — and therefore the
// sweep stats — identical run to run.
const cellRetries = 1

// Report is one experiment's merged outcome. Wall is measurement-only
// and deliberately excluded from String(): rendered reports must be a
// pure function of the experiment definitions.
type Report struct {
	ID    string
	Title string
	Claim string // what the paper asserts
	Rows  []string
	Pass  bool
	Wall  time.Duration // total wall clock of this experiment's cells
}

func (r *Report) String() string {
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s [%s]\n", r.ID, r.Title, status)
	fmt.Fprintf(&b, "   paper: %s\n", r.Claim)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "   %s\n", row)
	}
	return b.String()
}

// Result is what one cell's run closure returns: its report rows and
// its verdict. A fresh Result passes until a check fails.
type Result struct {
	Rows []string
	Pass bool
}

func newResult() *Result {
	return &Result{Pass: true}
}

func (r *Result) rowf(format string, args ...any) {
	r.Rows = append(r.Rows, fmt.Sprintf(format, args...))
}

// Cell is one experiment × parameter-point job: the unit the sweep
// scheduler fans out. Run must be deterministic and self-contained
// (build your own dict/instances — cells from the same experiment may
// run concurrently on different workers).
type Cell struct {
	Params string // short parameter label, e.g. "m=8000"
	Run    func() (*Result, error)
}

// Def declares one experiment: identity, the paper's claim, optional
// preamble rows (table headers), and its cells in row order.
type Def struct {
	ID    string // registry ID, e.g. "E32-hypercube"; sorts the sweep
	Name  string // short report name, e.g. "E32"
	Title string
	Claim string
	Pre   []string // rows emitted before any cell's rows
	Cells []Cell
}

var registry []Def

func register(d Def) {
	registry = append(registry, d)
}

// All returns the registered experiments sorted by ID.
func All() []Def {
	out := append([]Def(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns one experiment.
func ByID(id string) (Def, bool) {
	for _, d := range registry {
		if d.ID == id {
			return d, true
		}
	}
	return Def{}, false
}

// SweepStats summarizes one sweep's execution. Everything except Wall
// is deterministic.
type SweepStats struct {
	Experiments  int
	Cells        int
	ErroredCells int // cells whose closure returned an error or panicked
	Retried      int // extra attempts used across all cells
	Wall         time.Duration // summed per-cell wall clock
}

// cellOut is the sweep job payload: a cell result annotated with the
// wall clock its run took. The duration never reaches a report row.
type cellOut struct {
	rows []string
	pass bool
	wall time.Duration
}

// timedCell wraps a cell closure with the package's only stopwatch.
// Timing is measurement-only: the verdict and rows are established by
// the cell itself, and the duration is reported out-of-band (stderr,
// SweepStats) so rendered reports stay deterministic.
func timedCell(run func() (*Result, error)) func() (*cellOut, error) {
	return func() (*cellOut, error) {
		start := time.Now() //lint:allow wallclock-free measurement-layer stopwatch
		res, err := run()
		wall := time.Since(start) //lint:allow wallclock-free measurement-layer stopwatch
		if err != nil {
			return nil, err
		}
		return &cellOut{rows: res.Rows, pass: res.Pass, wall: wall}, nil
	}
}

// RunSweep executes the given experiments' cells on a sweep.Run worker
// pool and merges them into one Report per experiment, in the order
// defs was given. Erroring or panicking cells become failing rows of
// their experiment instead of aborting the sweep. The rendered reports
// are byte-identical for every workers value.
func RunSweep(workers int, defs []Def) ([]*Report, SweepStats) {
	var jobs []sweep.Job[*cellOut]
	for _, d := range defs {
		for _, c := range d.Cells {
			jobs = append(jobs, sweep.Job[*cellOut]{
				Name: d.ID + "/" + c.Params,
				Run:  timedCell(c.Run),
			})
		}
	}
	results, err := sweep.Run(workers, jobs, sweep.WithRetries(cellRetries))
	if err != nil {
		// The job list above has no dependencies, so a graph error is a
		// harness bug, not an experiment outcome.
		panic(fmt.Sprintf("experiments: malformed sweep: %v", err))
	}

	stats := SweepStats{Experiments: len(defs), Cells: len(jobs)}
	reports := make([]*Report, 0, len(defs))
	idx := 0
	for _, d := range defs {
		rep := &Report{
			ID:    d.Name,
			Title: d.Title,
			Claim: d.Claim,
			Rows:  append([]string(nil), d.Pre...),
			Pass:  true,
		}
		for _, c := range d.Cells {
			r := results[idx]
			idx++
			stats.Retried += maxInt(0, r.Attempts-1)
			if r.Err != nil {
				rep.Rows = append(rep.Rows, fmt.Sprintf("cell %s: error: %v", c.Params, r.Err))
				rep.Pass = false
				stats.ErroredCells++
				continue
			}
			rep.Rows = append(rep.Rows, r.Value.rows...)
			rep.Pass = rep.Pass && r.Value.pass
			rep.Wall += r.Value.wall
			stats.Wall += r.Value.wall
		}
		reports = append(reports, rep)
	}
	return reports, stats
}

// RunAll executes every experiment sequentially — the reference
// execution parallel sweeps must match byte for byte.
func RunAll() []*Report {
	reports, _ := RunSweep(1, All())
	return reports
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
