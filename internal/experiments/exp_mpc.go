package experiments

import (
	"math"

	"mpclogic/internal/cq"
	"mpclogic/internal/gym"
	"mpclogic/internal/hypercube"
	"mpclogic/internal/mapreduce"
	"mpclogic/internal/mpc"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

// Experiments for the synchronous half of the paper (Section 3):
// single-round load shapes, HyperCube's τ*-driven bound, skew, and the
// multi-round algorithms.

func init() {
	register("E31a-repartition", expRepartition)
	register("E31b-grouping", expGrouping)
	register("E31c-cascade", expCascade)
	register("E32-hypercube", expHyperCube)
	register("SHARES-exponents", expShares)
	register("SKEW-rounds", expSkewRounds)
	register("GYM-intermediates", expGYM)
	register("MR-transitive-closure", expMapReduceTC)
}

func loadOnly(r mpc.Round) mpc.Round {
	r.Compute = nil
	return r
}

func runLoad(p int, inst *rel.Instance, r mpc.Round) (int, error) {
	c := mpc.NewCluster(p)
	c.LoadRoundRobin(inst)
	if err := c.Run(loadOnly(r)); err != nil {
		return 0, err
	}
	return c.MaxLoad(), nil
}

// Example 3.1(1a): repartition join load — m/p without skew, Θ(m)
// with a heavy hitter.
func expRepartition() (*Report, error) {
	rep := &Report{
		ID:    "E31a",
		Title: "repartition join load (Example 3.1(1a))",
		Claim: "max load O(m/p) without skew; not resilient to skew (→ Θ(m))",
		Pass:  true,
	}
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z)")
	p := 16
	rep.rowf("%-8s %-10s %-12s %-10s %-12s", "m", "skew-free", "2m/p ref", "skewed50", "m ref")
	for _, m := range []int{4000, 8000, 16000} {
		r, err := hypercube.RepartitionJoin(q, p, 7)
		if err != nil {
			return nil, err
		}
		free, err := runLoad(p, workload.JoinSkewFree(m), r)
		if err != nil {
			return nil, err
		}
		skewed, err := runLoad(p, workload.JoinSkewed(m, 0.5), r)
		if err != nil {
			return nil, err
		}
		rep.rowf("%-8d %-10d %-12d %-10d %-12d", m, free, 2*m/p, skewed, m)
		if free > 2*(2*m/p) || skewed < m {
			rep.Pass = false
		}
	}
	return rep, nil
}

// Example 3.1(1b): grouping join load — m/√p regardless of skew.
func expGrouping() (*Report, error) {
	rep := &Report{
		ID:    "E31b",
		Title: "grouping join load (Example 3.1(1b), Ullman's drug interaction)",
		Claim: "max load O(m/√p) independent of skew",
		Pass:  true,
	}
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z)")
	p := 16
	ref := func(m int) int { return 2 * m / int(math.Sqrt(float64(p))) }
	rep.rowf("%-8s %-10s %-10s %-12s", "m", "skew-free", "skewed50", "2m/√p ref")
	for _, m := range []int{4000, 8000, 16000} {
		r, err := hypercube.GroupingJoin(q, p, 7)
		if err != nil {
			return nil, err
		}
		free, err := runLoad(p, workload.JoinSkewFree(m), r)
		if err != nil {
			return nil, err
		}
		skewed, err := runLoad(p, workload.JoinSkewed(m, 0.5), r)
		if err != nil {
			return nil, err
		}
		rep.rowf("%-8d %-10d %-10d %-12d", m, free, skewed, ref(m))
		// Both regimes within 1.5× of the reference: skew-independent.
		if float64(free) > 1.5*float64(ref(m)) || float64(skewed) > 1.5*float64(ref(m)) {
			rep.Pass = false
		}
	}
	return rep, nil
}

// Example 3.1(2): two-round cascaded triangle — correct, but ships the
// intermediate join result, unlike the one-round HyperCube.
func expCascade() (*Report, error) {
	rep := &Report{
		ID:    "E31c",
		Title: "two-round cascaded triangle vs one-round HyperCube (Example 3.1(2))",
		Claim: "the cascade needs 2 rounds and ships the intermediate K = R⋈S; HyperCube does one round",
		Pass:  true,
	}
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	m, p := 5000, 64
	inst := workload.TriangleSkewFree(m)
	want := cq.Output(q, inst)

	cc, out, err := gym.CascadeTriangle(p, inst, 3)
	if err != nil {
		return nil, err
	}
	if !out.Filter(func(f rel.Fact) bool { return f.Rel == "H" }).Equal(want) {
		rep.Pass = false
		rep.rowf("cascade output WRONG")
	}
	g, err := hypercube.NewOptimalGrid(q, p, 3)
	if err != nil {
		return nil, err
	}
	hc := mpc.NewCluster(g.P())
	hc.LoadRoundRobin(inst)
	if err := hc.Run(hypercube.HyperCubeRound(g)); err != nil {
		return nil, err
	}
	if !hc.Output().Equal(want) {
		rep.Pass = false
		rep.rowf("hypercube output WRONG")
	}
	rep.rowf("cascade:   rounds=%d totalComm=%d maxLoad=%d", cc.Rounds(), cc.TotalComm(), cc.MaxLoad())
	rep.rowf("hypercube: rounds=%d totalComm=%d maxLoad=%d", hc.Rounds(), hc.TotalComm(), hc.MaxLoad())
	if cc.Rounds() != 2 || hc.Rounds() != 1 {
		rep.Pass = false
	}
	return rep, nil
}

// Example 3.2 / BKS: HyperCube triangle load tracks 3m/p^{2/3} on
// skew-free data as p grows.
func expHyperCube() (*Report, error) {
	rep := &Report{
		ID:    "E32",
		Title: "HyperCube triangle load (Example 3.2, Beame-Koutris-Suciu)",
		Claim: "max load O(m/p^{2/3}) on skew-free data; τ* = 3/2",
		Pass:  true,
	}
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	m := 8000
	inst := workload.TriangleSkewFree(m)
	rep.rowf("%-6s %-10s %-14s %-8s", "p", "maxLoad", "3m/p^{2/3}", "ratio")
	for _, p := range []int{8, 27, 64, 125} {
		g, err := hypercube.NewOptimalGrid(q, p, 11)
		if err != nil {
			return nil, err
		}
		load, err := runLoad(g.P(), inst, hypercube.HyperCubeRound(g))
		if err != nil {
			return nil, err
		}
		ref := 3 * float64(m) / math.Pow(float64(p), 2.0/3.0)
		ratio := float64(load) / ref
		rep.rowf("%-6d %-10d %-14.0f %-8.2f", p, load, ref, ratio)
		if ratio > 2.0 || ratio < 0.3 {
			rep.Pass = false
		}
	}
	return rep, nil
}

// Shares exponents for a query zoo match 1/τ* (LP duality).
func expShares() (*Report, error) {
	rep := &Report{
		ID:    "SHARES",
		Title: "optimal share exponents vs fractional edge packing",
		Claim: "the share LP optimum t equals 1/τ*; triangle shares are p^{1/3} each",
		Pass:  true,
	}
	d := rel.NewDict()
	zoo := []string{
		"H(x, y, z) :- R(x, y), S(y, z), T(z, x)",
		"H(x, y, z) :- R(x, y), S(y, z)",
		"H(x, y, z, w) :- R(x, y), S(y, z), T(z, w), U(w, x)",
		"H(x, a, b, c) :- R(x, a), S(x, b), T(x, c)",
	}
	rep.rowf("%-55s %-6s %-8s", "query", "τ*", "t=1/τ*")
	for _, src := range zoo {
		q := cq.MustParse(d, src)
		pack, err := cq.FractionalEdgePacking(q)
		if err != nil {
			return nil, err
		}
		_, tval, err := cq.ShareExponents(q)
		if err != nil {
			return nil, err
		}
		rep.rowf("%-55s %-6.2f %-8.3f", src, pack.Value, tval)
		if math.Abs(tval-1/pack.Value) > 1e-6 {
			rep.Pass = false
		}
	}
	shares, _, err := hypercube.OptimalShares(cq.MustParse(d, zoo[0]), 64)
	if err != nil {
		return nil, err
	}
	rep.rowf("triangle integer shares at p=64: %v", shares)
	for _, s := range shares {
		if s != 4 {
			rep.Pass = false
		}
	}
	return rep, nil
}

// Section 3.2: under skew one round is stuck at ~m/√p while two rounds
// recover a lower load.
func expSkewRounds() (*Report, error) {
	rep := &Report{
		ID:    "SKEW",
		Title: "skewed triangle: one round vs two rounds (Section 3.2)",
		Claim: "one-round load is provably ≥ m/√p under skew; two rounds recover the skew-free exponent",
		Pass:  true,
	}
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	m := 20000
	inst := workload.TriangleSkewed(m, 0.5)
	heavy := rel.NewValueSet(workload.HeavyHitters(inst, "R", 1, m/16)...)
	rep.rowf("%-6s %-14s %-14s %-12s %-12s", "p", "1-round load", "2-round load", "m/√p", "3m/p^{2/3}")
	for _, p := range []int{64, 256} {
		g, err := hypercube.NewOptimalGrid(q, p, 5)
		if err != nil {
			return nil, err
		}
		one, err := runLoad(g.P(), inst, hypercube.HyperCubeRound(g))
		if err != nil {
			return nil, err
		}
		c2, _, err := gym.SkewTriangleTwoRound(p, inst, heavy, 5, g)
		if err != nil {
			return nil, err
		}
		two := c2.MaxLoad()
		sq := float64(m) / math.Sqrt(float64(p))
		cube := 3 * float64(m) / math.Pow(float64(p), 2.0/3.0)
		rep.rowf("%-6d %-14d %-14d %-12.0f %-12.0f", p, one, two, sq, cube)
		if two >= one {
			rep.Pass = false
		}
	}
	return rep, nil
}

// GYM / Yannakakis: intermediates bounded, cascade blows up;
// distributed Yannakakis trades rounds for communication.
func expGYM() (*Report, error) {
	rep := &Report{
		ID:    "GYM",
		Title: "Yannakakis vs cascade intermediates; GYM rounds (Section 3.2)",
		Claim: "semijoin reduction keeps intermediates at output scale; cascades can blow up; GYM pays rounds for that",
		Pass:  true,
	}
	d := rel.NewDict()
	q := cq.MustParse(d, "H(a, dd) :- R0(a, b), R1(b, c), R2(c, dd)")
	// Hub data: big fan product, small final output.
	inst := rel.NewInstance()
	hub := rel.Value(1 << 30)
	for i := 0; i < 300; i++ {
		inst.Add(rel.NewFact("R0", rel.Value(i), hub))
		inst.Add(rel.NewFact("R1", hub, rel.Value(10000+i)))
	}
	for j := 0; j < 10; j++ {
		inst.Add(rel.NewFact("R2", rel.Value(10000+j), rel.Value(20000+j)))
	}
	outY, stY, err := gym.Yannakakis(q, inst)
	if err != nil {
		return nil, err
	}
	_, stC, err := gym.CascadeJoin(q, inst)
	if err != nil {
		return nil, err
	}
	rep.rowf("output size:            %d", outY.Len())
	rep.rowf("yannakakis max interm.: %d", stY.MaxIntermediate)
	rep.rowf("cascade max interm.:    %d", stC.MaxIntermediate)
	if stY.MaxIntermediate > 2*outY.Len() || stC.MaxIntermediate < 10*stY.MaxIntermediate {
		rep.Pass = false
	}
	c, got, err := gym.DistributedYannakakis(q, 8, inst, 3)
	if err != nil {
		return nil, err
	}
	want := cq.Output(q, inst)
	if !got.Equal(want) {
		rep.Pass = false
		rep.rowf("distributed yannakakis WRONG")
	}
	rep.rowf("distributed yannakakis: rounds=%d totalComm=%d", c.Rounds(), c.TotalComm())
	tri := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	triInst := workload.TriangleSkewFree(500)
	cg, gotTri, dec, err := gym.GYM(tri, 16, triInst, 5)
	if err != nil {
		return nil, err
	}
	if !gotTri.Equal(cq.Output(tri, triInst)) {
		rep.Pass = false
		rep.rowf("GYM triangle WRONG")
	}
	rep.rowf("GYM triangle: bags=%d width=%d rounds=%d totalComm=%d",
		len(dec.Bags), dec.Width(), cg.Rounds(), cg.TotalComm())
	return rep, nil
}

// MapReduce transitive closure: linear vs doubling round counts.
func expMapReduceTC() (*Report, error) {
	rep := &Report{
		ID:    "MR",
		Title: "transitive closure in MapReduce (Afrati-Ullman, Section 3.2)",
		Claim: "MapReduce programs are MPC algorithms; nonlinear doubling needs O(log n) jobs vs Θ(n) for the linear plan",
		Pass:  true,
	}
	n := 64
	g := workload.PathGraph(n)
	lin, err := mapreduce.TransitiveClosure(8, g, "E", false)
	if err != nil {
		return nil, err
	}
	dbl, err := mapreduce.TransitiveClosure(8, g, "E", true)
	if err != nil {
		return nil, err
	}
	if !lin.Closure.Equal(dbl.Closure) {
		rep.Pass = false
		rep.rowf("closures DIFFER")
	}
	rep.rowf("path length n=%d, closure size=%d", n, lin.Closure.Len())
	rep.rowf("linear plan:   %d jobs", lin.Rounds)
	rep.rowf("doubling plan: %d jobs (⌈log₂ n⌉+1 = %d)", dbl.Rounds, int(math.Ceil(math.Log2(float64(n))))+1)
	if dbl.Rounds >= lin.Rounds || dbl.Rounds > int(math.Ceil(math.Log2(float64(n))))+2 {
		rep.Pass = false
	}
	return rep, nil
}

// Das Sarma-Afrati-Salihoglu-Ullman [27]: there is a trade-off between
// the replication rate and the reducer size — shrinking the per-server
// load forces more total communication. For the triangle with shares
// p^{1/3}, the replication rate is p^{1/3}.
func init() {
	register("TRADEOFF-replication", expReplicationTradeoff)
}

func expReplicationTradeoff() (*Report, error) {
	rep := &Report{
		ID:    "TRADEOFF",
		Title: "replication rate vs reducer size (Das Sarma et al., Section 3.1)",
		Claim: "halving the reducer size (load) costs a higher replication rate; for the triangle the rate is p^{1/3}",
		Pass:  true,
	}
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	m := 8000
	inst := workload.TriangleSkewFree(m)
	input := inst.Len()
	rep.rowf("%-6s %-12s %-14s %-10s", "p", "reducer size", "replication", "p^{1/3}")
	prevLoad, prevRate := 1<<30, 0.0
	for _, p := range []int{8, 64, 512} {
		g, err := hypercube.NewOptimalGrid(q, p, 11)
		if err != nil {
			return nil, err
		}
		c := mpc.NewCluster(g.P())
		c.LoadRoundRobin(inst)
		round := hypercube.HyperCubeRound(g)
		round.Compute = nil
		if err := c.Run(round); err != nil {
			return nil, err
		}
		rate := float64(c.TotalComm()) / float64(input)
		rep.rowf("%-6d %-12d %-14.2f %-10.2f", p, c.MaxLoad(), rate, math.Cbrt(float64(p)))
		if c.MaxLoad() >= prevLoad || rate <= prevRate {
			rep.Pass = false // the trade-off must be monotone both ways
		}
		if rate > 1.2*math.Cbrt(float64(p)) {
			rep.Pass = false
		}
		prevLoad, prevRate = c.MaxLoad(), rate
	}
	return rep, nil
}

// Beame-Koutris-Suciu's multi-round bounds: tree-like conjunctive
// queries on matching databases (every value occurs at most once per
// relation) are computable with load O(m/p) in a number of rounds
// governed by the join-tree depth — the near-matching upper bound the
// paper quotes at the end of Section 3.2.
func init() {
	register("MATCHING-multiround", expMatchingMultiround)
}

func expMatchingMultiround() (*Report, error) {
	rep := &Report{
		ID:    "MATCHING",
		Title: "tree-like queries on matching databases (Section 3.2, multi-round bounds)",
		Claim: "on matching databases, multi-round (Yannakakis-style) evaluation of tree-like queries runs at load O(m/p) per round",
		Pass:  true,
	}
	d := rel.NewDict()
	q := cq.MustParse(d, "H(a, dd) :- R0(a, b), R1(b, c), R2(c, dd)")
	m := 12000
	inst, _ := workload.AcyclicChain(3, m, 0, 1) // matching database: 1:1 everywhere
	rep.rowf("%-6s %-12s %-12s", "p", "max load", "3m/p ref")
	for _, p := range []int{8, 32, 128} {
		c, out, err := gym.DistributedYannakakis(q, p, inst, 5)
		if err != nil {
			return nil, err
		}
		if out.Len() != m {
			rep.Pass = false
			rep.rowf("WRONG output size %d at p=%d", out.Len(), p)
		}
		ref := 3 * m / p
		rep.rowf("%-6d %-12d %-12d", p, c.MaxLoad(), ref)
		// Within a small constant of m/p per relation shipped per round.
		if float64(c.MaxLoad()) > 2.0*float64(ref) {
			rep.Pass = false
		}
	}
	return rep, nil
}
