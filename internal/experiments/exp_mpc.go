package experiments

import (
	"fmt"
	"math"

	"mpclogic/internal/cq"
	"mpclogic/internal/gym"
	"mpclogic/internal/hypercube"
	"mpclogic/internal/mapreduce"
	"mpclogic/internal/mpc"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

// Experiments for the synchronous half of the paper (Section 3):
// single-round load shapes, HyperCube's τ*-driven bound, skew, and the
// multi-round algorithms. The parameter sweeps (per-m, per-p rows) are
// declared as independent cells so the sweep scheduler can fan them
// out; each cell rebuilds its own inputs from the deterministic
// workload generators.

func init() {
	register(Def{
		ID:    "E31a-repartition",
		Name:  "E31a",
		Title: "repartition join load (Example 3.1(1a))",
		Claim: "max load O(m/p) without skew; not resilient to skew (→ Θ(m))",
		Pre:   []string{fmt.Sprintf("%-8s %-10s %-12s %-10s %-12s", "m", "skew-free", "2m/p ref", "skewed50", "m ref")},
		Cells: []Cell{
			cellRepartition(4000),
			cellRepartition(8000),
			cellRepartition(16000),
		},
	})
	register(Def{
		ID:    "E31b-grouping",
		Name:  "E31b",
		Title: "grouping join load (Example 3.1(1b), Ullman's drug interaction)",
		Claim: "max load O(m/√p) independent of skew",
		Pre:   []string{fmt.Sprintf("%-8s %-10s %-10s %-12s", "m", "skew-free", "skewed50", "2m/√p ref")},
		Cells: []Cell{
			cellGrouping(4000),
			cellGrouping(8000),
			cellGrouping(16000),
		},
	})
	register(Def{
		ID:    "E31c-cascade",
		Name:  "E31c",
		Title: "two-round cascaded triangle vs one-round HyperCube (Example 3.1(2))",
		Claim: "the cascade needs 2 rounds and ships the intermediate K = R⋈S; HyperCube does one round",
		Cells: []Cell{{Params: "m=5000,p=64", Run: cellCascade}},
	})
	register(Def{
		ID:    "E32-hypercube",
		Name:  "E32",
		Title: "HyperCube triangle load (Example 3.2, Beame-Koutris-Suciu)",
		Claim: "max load O(m/p^{2/3}) on skew-free data; τ* = 3/2",
		Pre:   []string{fmt.Sprintf("%-6s %-10s %-14s %-8s", "p", "maxLoad", "3m/p^{2/3}", "ratio")},
		Cells: []Cell{
			cellHyperCube(8),
			cellHyperCube(27),
			cellHyperCube(64),
			cellHyperCube(125),
		},
	})
	register(Def{
		ID:    "SHARES-exponents",
		Name:  "SHARES",
		Title: "optimal share exponents vs fractional edge packing",
		Claim: "the share LP optimum t equals 1/τ*; triangle shares are p^{1/3} each",
		Pre:   []string{fmt.Sprintf("%-55s %-6s %-8s", "query", "τ*", "t=1/τ*")},
		Cells: []Cell{
			cellShareExponent("H(x, y, z) :- R(x, y), S(y, z), T(z, x)"),
			cellShareExponent("H(x, y, z) :- R(x, y), S(y, z)"),
			cellShareExponent("H(x, y, z, w) :- R(x, y), S(y, z), T(z, w), U(w, x)"),
			cellShareExponent("H(x, a, b, c) :- R(x, a), S(x, b), T(x, c)"),
			{Params: "integer-shares-p=64", Run: cellIntegerShares},
		},
	})
	register(Def{
		ID:    "SKEW-rounds",
		Name:  "SKEW",
		Title: "skewed triangle: one round vs two rounds (Section 3.2)",
		Claim: "one-round load is provably ≥ m/√p under skew; two rounds recover the skew-free exponent",
		Pre:   []string{fmt.Sprintf("%-6s %-14s %-14s %-12s %-12s", "p", "1-round load", "2-round load", "m/√p", "3m/p^{2/3}")},
		Cells: []Cell{
			cellSkewRounds(64),
			cellSkewRounds(256),
		},
	})
	register(Def{
		ID:    "GYM-intermediates",
		Name:  "GYM",
		Title: "Yannakakis vs cascade intermediates; GYM rounds (Section 3.2)",
		Claim: "semijoin reduction keeps intermediates at output scale; cascades can blow up; GYM pays rounds for that",
		Cells: []Cell{{Params: "hub+triangle", Run: cellGYM}},
	})
	register(Def{
		ID:    "MR-transitive-closure",
		Name:  "MR",
		Title: "transitive closure in MapReduce (Afrati-Ullman, Section 3.2)",
		Claim: "MapReduce programs are MPC algorithms; nonlinear doubling needs O(log n) jobs vs Θ(n) for the linear plan",
		Cells: []Cell{{Params: "n=64", Run: cellMapReduceTC}},
	})
	register(Def{
		ID:    "TRADEOFF-replication",
		Name:  "TRADEOFF",
		Title: "replication rate vs reducer size (Das Sarma et al., Section 3.1)",
		Claim: "halving the reducer size (load) costs a higher replication rate; for the triangle the rate is p^{1/3}",
		// Monotonicity across the p ladder is the claim itself, so this
		// stays one cell rather than one per p.
		Cells: []Cell{{Params: "p=8,64,512", Run: cellReplicationTradeoff}},
	})
	register(Def{
		ID:    "MATCHING-multiround",
		Name:  "MATCHING",
		Title: "tree-like queries on matching databases (Section 3.2, multi-round bounds)",
		Claim: "on matching databases, multi-round (Yannakakis-style) evaluation of tree-like queries runs at load O(m/p) per round",
		Pre:   []string{fmt.Sprintf("%-6s %-12s %-12s", "p", "max load", "3m/p ref")},
		Cells: []Cell{
			cellMatching(8),
			cellMatching(32),
			cellMatching(128),
		},
	})
}

func loadOnly(r mpc.Round) mpc.Round {
	r.Compute = nil
	return r
}

func runLoad(p int, inst *rel.Instance, r mpc.Round) (int, error) {
	c := mpc.NewCluster(p)
	c.LoadRoundRobin(inst)
	if err := c.Run(loadOnly(r)); err != nil {
		return 0, err
	}
	return c.MaxLoad(), nil
}

// Example 3.1(1a): repartition join load — m/p without skew, Θ(m)
// with a heavy hitter. One cell per input size m.
func cellRepartition(m int) Cell {
	return Cell{Params: fmt.Sprintf("m=%d", m), Run: func() (*Result, error) {
		res := newResult()
		d := rel.NewDict()
		q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z)")
		p := 16
		r, err := hypercube.RepartitionJoin(q, p, 7)
		if err != nil {
			return nil, err
		}
		free, err := runLoad(p, workload.JoinSkewFree(m), r)
		if err != nil {
			return nil, err
		}
		skewed, err := runLoad(p, workload.JoinSkewed(m, 0.5), r)
		if err != nil {
			return nil, err
		}
		res.rowf("%-8d %-10d %-12d %-10d %-12d", m, free, 2*m/p, skewed, m)
		if free > 2*(2*m/p) || skewed < m {
			res.Pass = false
		}
		return res, nil
	}}
}

// Example 3.1(1b): grouping join load — m/√p regardless of skew. One
// cell per input size m.
func cellGrouping(m int) Cell {
	return Cell{Params: fmt.Sprintf("m=%d", m), Run: func() (*Result, error) {
		res := newResult()
		d := rel.NewDict()
		q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z)")
		p := 16
		ref := 2 * m / int(math.Sqrt(float64(p)))
		r, err := hypercube.GroupingJoin(q, p, 7)
		if err != nil {
			return nil, err
		}
		free, err := runLoad(p, workload.JoinSkewFree(m), r)
		if err != nil {
			return nil, err
		}
		skewed, err := runLoad(p, workload.JoinSkewed(m, 0.5), r)
		if err != nil {
			return nil, err
		}
		res.rowf("%-8d %-10d %-10d %-12d", m, free, skewed, ref)
		// Both regimes within 1.5× of the reference: skew-independent.
		if float64(free) > 1.5*float64(ref) || float64(skewed) > 1.5*float64(ref) {
			res.Pass = false
		}
		return res, nil
	}}
}

// Example 3.1(2): two-round cascaded triangle — correct, but ships the
// intermediate join result, unlike the one-round HyperCube.
func cellCascade() (*Result, error) {
	res := newResult()
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	m, p := 5000, 64
	inst := workload.TriangleSkewFree(m)
	want := cq.Output(q, inst)

	cc, out, err := gym.CascadeTriangle(p, inst, 3)
	if err != nil {
		return nil, err
	}
	if !out.Filter(func(f rel.Fact) bool { return f.Rel == "H" }).Equal(want) {
		res.Pass = false
		res.rowf("cascade output WRONG")
	}
	g, err := hypercube.NewOptimalGrid(q, p, 3)
	if err != nil {
		return nil, err
	}
	hc := mpc.NewCluster(g.P())
	hc.LoadRoundRobin(inst)
	if err := hc.Run(hypercube.HyperCubeRound(g)); err != nil {
		return nil, err
	}
	if !hc.Output().Equal(want) {
		res.Pass = false
		res.rowf("hypercube output WRONG")
	}
	res.rowf("cascade:   rounds=%d totalComm=%d maxLoad=%d", cc.Rounds(), cc.TotalComm(), cc.MaxLoad())
	res.rowf("hypercube: rounds=%d totalComm=%d maxLoad=%d", hc.Rounds(), hc.TotalComm(), hc.MaxLoad())
	if cc.Rounds() != 2 || hc.Rounds() != 1 {
		res.Pass = false
	}
	return res, nil
}

// Example 3.2 / BKS: HyperCube triangle load tracks 3m/p^{2/3} on
// skew-free data as p grows. One cell per server count p.
func cellHyperCube(p int) Cell {
	return Cell{Params: fmt.Sprintf("p=%d", p), Run: func() (*Result, error) {
		res := newResult()
		d := rel.NewDict()
		q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
		m := 8000
		inst := workload.TriangleSkewFree(m)
		g, err := hypercube.NewOptimalGrid(q, p, 11)
		if err != nil {
			return nil, err
		}
		load, err := runLoad(g.P(), inst, hypercube.HyperCubeRound(g))
		if err != nil {
			return nil, err
		}
		ref := 3 * float64(m) / math.Pow(float64(p), 2.0/3.0)
		ratio := float64(load) / ref
		res.rowf("%-6d %-10d %-14.0f %-8.2f", p, load, ref, ratio)
		if ratio > 2.0 || ratio < 0.3 {
			res.Pass = false
		}
		return res, nil
	}}
}

// Shares exponents for a query zoo match 1/τ* (LP duality). One cell
// per query.
func cellShareExponent(src string) Cell {
	return Cell{Params: src, Run: func() (*Result, error) {
		res := newResult()
		d := rel.NewDict()
		q := cq.MustParse(d, src)
		pack, err := cq.FractionalEdgePacking(q)
		if err != nil {
			return nil, err
		}
		_, tval, err := cq.ShareExponents(q)
		if err != nil {
			return nil, err
		}
		res.rowf("%-55s %-6.2f %-8.3f", src, pack.Value, tval)
		if math.Abs(tval-1/pack.Value) > 1e-6 {
			res.Pass = false
		}
		return res, nil
	}}
}

func cellIntegerShares() (*Result, error) {
	res := newResult()
	d := rel.NewDict()
	shares, _, err := hypercube.OptimalShares(cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)"), 64)
	if err != nil {
		return nil, err
	}
	res.rowf("triangle integer shares at p=64: %v", shares)
	for _, s := range shares {
		if s != 4 {
			res.Pass = false
		}
	}
	return res, nil
}

// Section 3.2: under skew one round is stuck at ~m/√p while two rounds
// recover a lower load. One cell per server count p.
func cellSkewRounds(p int) Cell {
	return Cell{Params: fmt.Sprintf("p=%d", p), Run: func() (*Result, error) {
		res := newResult()
		d := rel.NewDict()
		q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
		m := 20000
		inst := workload.TriangleSkewed(m, 0.5)
		heavy := rel.NewValueSet(workload.HeavyHitters(inst, "R", 1, m/16)...)
		g, err := hypercube.NewOptimalGrid(q, p, 5)
		if err != nil {
			return nil, err
		}
		one, err := runLoad(g.P(), inst, hypercube.HyperCubeRound(g))
		if err != nil {
			return nil, err
		}
		c2, _, err := gym.SkewTriangleTwoRound(p, inst, heavy, 5, g)
		if err != nil {
			return nil, err
		}
		two := c2.MaxLoad()
		sq := float64(m) / math.Sqrt(float64(p))
		cube := 3 * float64(m) / math.Pow(float64(p), 2.0/3.0)
		res.rowf("%-6d %-14d %-14d %-12.0f %-12.0f", p, one, two, sq, cube)
		if two >= one {
			res.Pass = false
		}
		return res, nil
	}}
}

// GYM / Yannakakis: intermediates bounded, cascade blows up;
// distributed Yannakakis trades rounds for communication.
func cellGYM() (*Result, error) {
	res := newResult()
	d := rel.NewDict()
	q := cq.MustParse(d, "H(a, dd) :- R0(a, b), R1(b, c), R2(c, dd)")
	// Hub data: big fan product, small final output.
	inst := rel.NewInstance()
	hub := rel.Value(1 << 30)
	for i := 0; i < 300; i++ {
		inst.Add(rel.NewFact("R0", rel.Value(i), hub))
		inst.Add(rel.NewFact("R1", hub, rel.Value(10000+i)))
	}
	for j := 0; j < 10; j++ {
		inst.Add(rel.NewFact("R2", rel.Value(10000+j), rel.Value(20000+j)))
	}
	outY, stY, err := gym.Yannakakis(q, inst)
	if err != nil {
		return nil, err
	}
	_, stC, err := gym.CascadeJoin(q, inst)
	if err != nil {
		return nil, err
	}
	res.rowf("output size:            %d", outY.Len())
	res.rowf("yannakakis max interm.: %d", stY.MaxIntermediate)
	res.rowf("cascade max interm.:    %d", stC.MaxIntermediate)
	if stY.MaxIntermediate > 2*outY.Len() || stC.MaxIntermediate < 10*stY.MaxIntermediate {
		res.Pass = false
	}
	c, got, err := gym.DistributedYannakakis(q, 8, inst, 3)
	if err != nil {
		return nil, err
	}
	want := cq.Output(q, inst)
	if !got.Equal(want) {
		res.Pass = false
		res.rowf("distributed yannakakis WRONG")
	}
	res.rowf("distributed yannakakis: rounds=%d totalComm=%d", c.Rounds(), c.TotalComm())
	tri := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	triInst := workload.TriangleSkewFree(500)
	cg, gotTri, dec, err := gym.GYM(tri, 16, triInst, 5)
	if err != nil {
		return nil, err
	}
	if !gotTri.Equal(cq.Output(tri, triInst)) {
		res.Pass = false
		res.rowf("GYM triangle WRONG")
	}
	res.rowf("GYM triangle: bags=%d width=%d rounds=%d totalComm=%d",
		len(dec.Bags), dec.Width(), cg.Rounds(), cg.TotalComm())
	return res, nil
}

// MapReduce transitive closure: linear vs doubling round counts.
func cellMapReduceTC() (*Result, error) {
	res := newResult()
	n := 64
	g := workload.PathGraph(n)
	lin, err := mapreduce.TransitiveClosure(8, g, "E", false)
	if err != nil {
		return nil, err
	}
	dbl, err := mapreduce.TransitiveClosure(8, g, "E", true)
	if err != nil {
		return nil, err
	}
	if !lin.Closure.Equal(dbl.Closure) {
		res.Pass = false
		res.rowf("closures DIFFER")
	}
	res.rowf("path length n=%d, closure size=%d", n, lin.Closure.Len())
	res.rowf("linear plan:   %d jobs", lin.Rounds)
	res.rowf("doubling plan: %d jobs (⌈log₂ n⌉+1 = %d)", dbl.Rounds, int(math.Ceil(math.Log2(float64(n))))+1)
	if dbl.Rounds >= lin.Rounds || dbl.Rounds > int(math.Ceil(math.Log2(float64(n))))+2 {
		res.Pass = false
	}
	return res, nil
}

// Das Sarma-Afrati-Salihoglu-Ullman [27]: there is a trade-off between
// the replication rate and the reducer size — shrinking the per-server
// load forces more total communication. For the triangle with shares
// p^{1/3}, the replication rate is p^{1/3}.
func cellReplicationTradeoff() (*Result, error) {
	res := newResult()
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	m := 8000
	inst := workload.TriangleSkewFree(m)
	input := inst.Len()
	res.rowf("%-6s %-12s %-14s %-10s", "p", "reducer size", "replication", "p^{1/3}")
	prevLoad, prevRate := 1<<30, 0.0
	for _, p := range []int{8, 64, 512} {
		g, err := hypercube.NewOptimalGrid(q, p, 11)
		if err != nil {
			return nil, err
		}
		c := mpc.NewCluster(g.P())
		c.LoadRoundRobin(inst)
		round := hypercube.HyperCubeRound(g)
		round.Compute = nil
		if err := c.Run(round); err != nil {
			return nil, err
		}
		rate := float64(c.TotalComm()) / float64(input)
		res.rowf("%-6d %-12d %-14.2f %-10.2f", p, c.MaxLoad(), rate, math.Cbrt(float64(p)))
		if c.MaxLoad() >= prevLoad || rate <= prevRate {
			res.Pass = false // the trade-off must be monotone both ways
		}
		if rate > 1.2*math.Cbrt(float64(p)) {
			res.Pass = false
		}
		prevLoad, prevRate = c.MaxLoad(), rate
	}
	return res, nil
}

// Beame-Koutris-Suciu's multi-round bounds: tree-like conjunctive
// queries on matching databases (every value occurs at most once per
// relation) are computable with load O(m/p) in a number of rounds
// governed by the join-tree depth — the near-matching upper bound the
// paper quotes at the end of Section 3.2. One cell per server count p.
func cellMatching(p int) Cell {
	return Cell{Params: fmt.Sprintf("p=%d", p), Run: func() (*Result, error) {
		res := newResult()
		d := rel.NewDict()
		q := cq.MustParse(d, "H(a, dd) :- R0(a, b), R1(b, c), R2(c, dd)")
		m := 12000
		inst, _ := workload.AcyclicChain(3, m, 0, 1) // matching database: 1:1 everywhere
		c, out, err := gym.DistributedYannakakis(q, p, inst, 5)
		if err != nil {
			return nil, err
		}
		if out.Len() != m {
			res.Pass = false
			res.rowf("WRONG output size %d at p=%d", out.Len(), p)
		}
		ref := 3 * m / p
		res.rowf("%-6d %-12d %-12d", p, c.MaxLoad(), ref)
		// Within a small constant of m/p per relation shipped per round.
		if float64(c.MaxLoad()) > 2.0*float64(ref) {
			res.Pass = false
		}
		return res, nil
	}}
}
