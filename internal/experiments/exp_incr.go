package experiments

import (
	"mpclogic/internal/gym"
	"mpclogic/internal/mpc"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

// INCR exercises the incremental-maintenance path of PR 7: delta
// programs keep their relations resident and ship only Δ fragments, so
// maintaining a view under an update batch should cost communication
// proportional to the batch's consequences, while a from-scratch rerun
// pays for the whole input every time. Each cell feeds one view
// (transitive closure or the cascade triangle) a deterministic update
// stream at one batch size, maintains it with ApplyUpdate, and replays
// the same stream as from-scratch reruns after every batch. The
// verdict is machine-checked on deterministic work counters: the
// maintained cluster must be byte-identical to the final rerun (output
// and per-server state), every shipped fact must be a Δ fact, and the
// communication ratio must clear the cell's floor — 10x for the small
// batches of the headline claim, merely >1x for the bulk batch where
// the update itself dominates the resident state.

func init() {
	register(Def{
		ID:    "INCR-maintenance",
		Name:  "INCR",
		Title: "incremental view maintenance under update batches (delta-shipped rounds)",
		Claim: "maintaining a view costs communication proportional to the update's consequences, not the resident state, and the maintained cluster is byte-identical to a from-scratch run on the final input",
		Cells: []Cell{
			{Params: "tc/batch=1", Run: cellIncr(incrTCView(), 1, 8, 10)},
			{Params: "tc/batch=100", Run: cellIncr(incrTCView(), 100, 5, 10)},
			{Params: "tc/batch=10000", Run: cellIncr(incrTCView(), 10000, 2, 1)},
			{Params: "triangle/batch=1", Run: cellIncr(incrTriangleView(), 1, 8, 10)},
			{Params: "triangle/batch=100", Run: cellIncr(incrTriangleView(), 100, 5, 10)},
			{Params: "triangle/batch=10000", Run: cellIncr(incrTriangleView(), 10000, 2, 1)},
		},
	})
}

// incrView is one maintained view under test: a delta program, its
// base instance, and a deterministic update stream (updFact(i) is the
// i-th fact; streams are disjoint from the base so consequence sizes
// are predictable).
type incrView struct {
	name    string
	p       int
	prog    func() mpc.DeltaProgram
	base    func() *rel.Instance
	updFact func(i int) rel.Fact
}

// incrTCView maintains TC over a 40-component base graph (5760
// resident closure facts); updates append fresh disjoint chains of 8
// edges, so each update's consequences are a bounded neighborhood no
// matter how large the resident closure is.
func incrTCView() incrView {
	return incrView{
		name: "tc",
		p:    5,
		prog: func() mpc.DeltaProgram { return gym.DeltaTCProgram(5, 11) },
		base: func() *rel.Instance { return workload.ComponentsGraph(40, 12) },
		updFact: func(i int) rel.Fact {
			// Chain j covers vertices off+9j … off+9j+8: edges within a
			// chain share endpoints, consecutive chains are disjoint.
			const off = 1 << 20
			u := rel.Value(off + 9*(i/8) + i%8)
			return rel.NewFact("E", u, u+1)
		},
	}
}

// incrTriangleView maintains the cascade triangle view over a
// skew-free base of 400 triangles; update fact 3j+r is side r of a
// fresh triangle on values disjoint from the base blocks, so every
// completed triple adds exactly one K fact and one H fact.
func incrTriangleView() incrView {
	return incrView{
		name: "triangle",
		p:    6,
		prog: func() mpc.DeltaProgram { return gym.DeltaCascadeTriangleProgram(6, 11) },
		base: func() *rel.Instance { return workload.TriangleSkewFree(400) },
		updFact: func(i int) rel.Fact {
			j := rel.Value(i / 3)
			x := rel.Value(1<<30) + j
			y := rel.Value(1<<30+1<<26) + j
			z := rel.Value(1<<30+2<<26) + j
			switch i % 3 {
			case 0:
				return rel.NewFact("R", x, y)
			case 1:
				return rel.NewFact("S", y, z)
			}
			return rel.NewFact("T", z, x)
		},
	}
}

// cellIncr runs one view × batch-size point: nBatches update batches
// of the given size maintained incrementally, against from-scratch
// reruns on every cumulative prefix.
func cellIncr(v incrView, batch, nBatches int, minRatio float64) func() (*Result, error) {
	return func() (*Result, error) {
		res := newResult()
		base := v.base()
		batches := make([]*rel.Instance, nBatches)
		idx := 0
		for b := range batches {
			batches[b] = rel.NewInstance()
			for k := 0; k < batch; k++ {
				batches[b].Add(v.updFact(idx))
				idx++
			}
		}

		// Incremental path: load once, then maintain.
		incr := mpc.NewCluster(v.p)
		if err := incr.RunDelta(v.prog(), base); err != nil {
			return nil, err
		}
		baseComm := incr.TotalComm()
		for _, b := range batches {
			if err := incr.ApplyUpdate(b); err != nil {
				return nil, err
			}
		}
		incrComm := incr.TotalComm() - baseComm

		// From-scratch path: after every batch, re-evaluate the whole
		// cumulative input on a fresh cluster — what maintaining the view
		// without the delta engine would cost.
		cum := base.Clone()
		scratchComm := 0
		var scratch *mpc.Cluster
		for _, b := range batches {
			cum.AddAll(b)
			c := mpc.NewCluster(v.p)
			if err := c.RunDelta(v.prog(), cum); err != nil {
				return nil, err
			}
			scratchComm += c.TotalComm()
			scratch = c
		}

		identical := incr.Output().String() == scratch.Output().String()
		for i := 0; i < v.p; i++ {
			if !incr.Server(i).Equal(scratch.Server(i)) {
				identical = false
			}
		}
		deltaOnly := incr.DeltaCommTotal() > 0 && incr.DeltaCommTotal() == incr.TotalComm()
		ratio := float64(scratchComm) / float64(incrComm)

		res.rowf("%-8s batch=%-5d ×%d  upd-facts=%-5d incr-comm=%-6d scratch-comm=%-7d ratio=%7.1fx (floor %gx)  identical=%v delta-only=%v",
			v.name, batch, nBatches, batch*nBatches, incrComm, scratchComm, ratio, minRatio, identical, deltaOnly)
		res.Pass = identical && deltaOnly && ratio >= minRatio
		return res, nil
	}
}
