package experiments

import (
	"fmt"
	"sync"
)

// RegisterSelfTest registers three synthetic experiments that exercise
// the harness's failure plumbing end to end: a passing cell, an
// erroring cell, and a panicking cell. They exist so the
// cmd/experiments exit-code contract (and the sweep's panic capture)
// can be driven through the real binary without waiting on a full
// sweep; the ZZSELF prefix keeps them sorted after every real
// experiment. Idempotent, and only called behind the -selftest flag —
// normal runs never see them.
func RegisterSelfTest() {
	selfTestOnce.Do(func() {
		register(Def{
			ID:    "ZZSELF-pass",
			Name:  "ZZSELF-pass",
			Title: "harness self-test: passing cell",
			Claim: "a passing cell yields a PASS report and exit code 0",
			Cells: []Cell{{Params: "ok", Run: func() (*Result, error) {
				res := newResult()
				res.rowf("self-test cell ran")
				return res, nil
			}}},
		})
		register(Def{
			ID:    "ZZSELF-error",
			Name:  "ZZSELF-error",
			Title: "harness self-test: erroring cell",
			Claim: "an erroring cell becomes a failing row, not a crashed sweep",
			Cells: []Cell{
				{Params: "boom", Run: func() (*Result, error) {
					return nil, fmt.Errorf("wired to error")
				}},
				{Params: "survivor", Run: func() (*Result, error) {
					res := newResult()
					res.rowf("sibling cell still ran")
					return res, nil
				}},
			},
		})
		register(Def{
			ID:    "ZZSELF-panic",
			Name:  "ZZSELF-panic",
			Title: "harness self-test: panicking cell",
			Claim: "a panicking cell is captured as a failing row instead of killing the sweep",
			Cells: []Cell{{Params: "kaboom", Run: func() (*Result, error) {
				panic("wired to panic")
			}}},
		})
	})
}

var selfTestOnce sync.Once
