package experiments

import (
	"fmt"

	"mpclogic/internal/cq"
	"mpclogic/internal/gym"
	"mpclogic/internal/hypercube"
	"mpclogic/internal/mpc"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

// FAULTMPC exercises the fault-tolerance layer of the synchronous
// engine (PR 4): the MPC model assumes servers that never fail, so the
// engineering claim to verify is fault *transparency* — checkpointed
// recovery, retransmission, and straggler speculation may change when
// a round finishes and how much replica traffic it costs, but never
// what it computes or the logical load metrics the theory bounds.
// Each algorithm's 9-plan matrix is an independent cell, as is the
// checkpoint-resume demonstration.

func init() {
	register(Def{
		ID:    "FAULTMPC-matrix",
		Name:  "FAULTMPC",
		Title: "fault-tolerant MPC rounds (checkpointed recovery, retransmission, straggler speculation)",
		Claim: "under every fault plan in the seeded matrix, output and logical maxload/totalcomm/rounds are byte-identical to the fault-free run; recovery costs surface only in the recovery metrics",
		Cells: []Cell{
			{Params: "hypercube-triangle", Run: cellFaultMatrix("hypercube-triangle")},
			{Params: "gym-triangle", Run: cellFaultMatrix("gym-triangle")},
			{Params: "skew-two-round", Run: cellFaultMatrix("skew-two-round")},
			{Params: "checkpoint-resume", Run: cellFaultResume},
		},
	})
}

// faultAlgo builds one of the multi-round algorithms under test,
// rebuilt per cell from the deterministic workload generators.
type faultAlgo struct {
	name string
	p    int
	run  func(opts ...mpc.Option) (*mpc.Cluster, *rel.Instance, error)
}

func newFaultAlgo(name string) (*faultAlgo, error) {
	d := rel.NewDict()
	triQ := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	m := 1500
	triInst := workload.TriangleSkewFree(m)
	switch name {
	case "hypercube-triangle":
		hcGrid, err := hypercube.NewOptimalGrid(triQ, 27, 11)
		if err != nil {
			return nil, err
		}
		return &faultAlgo{name: name, p: hcGrid.P(), run: func(opts ...mpc.Option) (*mpc.Cluster, *rel.Instance, error) {
			c := mpc.NewCluster(hcGrid.P(), opts...)
			c.LoadRoundRobin(triInst)
			if err := c.Run(hypercube.HyperCubeRound(hcGrid)); err != nil {
				return c, nil, err
			}
			return c, c.Output(), nil
		}}, nil
	case "gym-triangle":
		return &faultAlgo{name: name, p: 16, run: func(opts ...mpc.Option) (*mpc.Cluster, *rel.Instance, error) {
			c, out, _, err := gym.GYM(triQ, 16, triInst, 5, opts...)
			return c, out, err
		}}, nil
	case "skew-two-round":
		skewInst := workload.TriangleSkewed(m, 0.3)
		heavy := rel.NewValueSet(workload.HeavyHitters(skewInst, "R", 1, m/10)...)
		skewGrid, err := hypercube.NewOptimalGrid(triQ, 27, 17)
		if err != nil {
			return nil, err
		}
		return &faultAlgo{name: name, p: 27, run: func(opts ...mpc.Option) (*mpc.Cluster, *rel.Instance, error) {
			return gym.SkewTriangleTwoRound(27, skewInst, heavy, 17, skewGrid, opts...)
		}}, nil
	}
	return nil, fmt.Errorf("unknown fault algorithm %q", name)
}

// cellFaultMatrix runs one algorithm under every plan of the seeded
// fault matrix and checks transparency against its fault-free run.
func cellFaultMatrix(name string) func() (*Result, error) {
	return func() (*Result, error) {
		res := newResult()
		a, err := newFaultAlgo(name)
		if err != nil {
			return nil, err
		}
		base, baseOut, err := a.run()
		if err != nil {
			return nil, err
		}
		matrix := mpc.StandardFaultMatrix(2026, 12, a.p)
		var agg mpc.RecoveryStats
		transparent := true
		for _, np := range matrix {
			c, out, err := a.run(mpc.WithFaultPlan(np.Plan))
			if err != nil {
				return nil, fmt.Errorf("%s under %s: %w", a.name, np.Name, err)
			}
			if out.String() != baseOut.String() || c.LogicalTrace() != base.LogicalTrace() {
				transparent = false
			}
			r := c.RecoveryTotals()
			agg.Retries += r.Retries
			agg.RecoveredServers += r.RecoveredServers
			agg.ReplicaComm += r.ReplicaComm
			agg.SpeculativeWins += r.SpeculativeWins
		}
		res.rowf("%-18s p=%-3d rounds=%d maxload=%d totalcomm=%d plans=%d transparent=%v  Σ(retries=%d recovered=%d replica=%d specwins=%d)",
			a.name, a.p, base.Rounds(), base.MaxLoad(), base.TotalComm(), len(matrix), transparent,
			agg.Retries, agg.RecoveredServers, agg.ReplicaComm, agg.SpeculativeWins)
		// Transparency must hold AND must not be vacuous: the matrix
		// has to have actually crashed servers and retried transfers.
		res.Pass = res.Pass && transparent && agg.Retries > 0 && agg.RecoveredServers > 0
		return res, nil
	}
}

// Resume demonstration: a GYM run killed mid-Yannakakis (a crash
// beyond the retry budget) is restored from its round-granular
// checkpoint and resumed via the rebuilt program, reproducing the
// fault-free output and logical trace without re-running the
// completed prefix.
func cellFaultResume() (*Result, error) {
	res := newResult()
	d := rel.NewDict()
	triQ := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	triInst := workload.TriangleSkewFree(1500)
	prog, _, err := gym.GYMProgram(triQ, 16, 5)
	if err != nil {
		return nil, err
	}
	free, want, _, err := gym.GYM(triQ, 16, triInst, 5)
	if err != nil {
		return nil, err
	}
	kill := mpc.NewFaultPlan().AddCrash(4, 0, mpc.DefaultRetryBudget+1)
	crashed, _, _, err := gym.GYM(triQ, 16, triInst, 5, mpc.WithFaultPlan(kill))
	if err == nil {
		res.Pass = false
		res.rowf("resume: budget-exceeding crash did NOT fail the run")
		return res, nil
	}
	ck := crashed.Checkpoint()
	restored := mpc.Restore(ck)
	if err := restored.RunResumable(prog...); err != nil {
		return nil, err
	}
	resumeOK := restored.Output().String() == want.String() &&
		restored.LogicalTrace() == free.LogicalTrace()
	res.rowf("resume: GYM killed at round %d/%d (retry budget exhausted), restored from checkpoint, re-ran %d rounds → output+trace identical=%v",
		ck.Rounds(), len(prog), len(prog)-ck.Rounds(), resumeOK)
	res.Pass = res.Pass && resumeOK
	return res, nil
}
