package experiments

import (
	"mpclogic/internal/cq"
	"mpclogic/internal/mpc"
	"mpclogic/internal/pc"
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
)

// Experiments for the open directions Section 6 sketches, which this
// repository implements as extensions: the tractable transfer fragment
// for full queries, transfer for unions, generalized aggregators, and
// correctness of multi-round algorithms.

func init() {
	register(Def{
		ID:    "EXT-section6",
		Name:  "EXT",
		Title: "Section 6 extensions: tractable transfer, unions, aggregators, multi-round",
		Claim: "the framework extends to full-query fast paths, UCQ transfer, non-union aggregators, and multi-round algorithms",
		Cells: []Cell{{Params: "all-four", Run: cellExtensions}},
	})
}

func cellExtensions() (*Result, error) {
	res := newResult()
	d := rel.NewDict()

	// 1. Tractable full-query transfer agrees with the general path.
	tri := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	join := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z)")
	fast, _, err := pc.CoversFull(tri, join)
	if err != nil {
		return nil, err
	}
	slow, _, err := pc.Covers(tri, join)
	if err != nil {
		return nil, err
	}
	res.rowf("full-query fast path: triangle→join transfer = %v (general path agrees: %v)", fast, fast == slow)
	if !fast || fast != slow {
		res.Pass = false
	}

	// 2. UCQ transfer: Q3 transfers to Q1 ∪ Q2.
	q1 := cq.MustParse(d, "H() :- S(x), R(x, x), T(x)")
	q2 := cq.MustParse(d, "H() :- R(x, x), T(x)")
	q3 := cq.MustParse(d, "H() :- S(x), R(x, y), T(y)")
	okU, _, err := pc.TransfersUCQ(
		&cq.UCQ{Disjuncts: []*cq.CQ{q3}},
		&cq.UCQ{Disjuncts: []*cq.CQ{q1, q2}})
	if err != nil {
		return nil, err
	}
	res.rowf("UCQ transfer Q3 → Q1 ∪ Q2: %v", okU)
	if !okU {
		res.Pass = false
	}

	// 3. Aggregators: union under a partition is correct for the
	// simple query, intersection is not (it loses the partitioned
	// facts) — aggregator choice is part of correctness.
	qs := cq.MustParse(d, "H(x) :- R(x)")
	hash := &policy.Hash{Nodes: 2}
	okUnion, _, err := pc.GeneralizedCorrectBounded(qs, []*cq.CQ{qs}, pc.UnionAgg, hash, 2)
	if err != nil {
		return nil, err
	}
	okInter, _, err := pc.GeneralizedCorrectBounded(qs, []*cq.CQ{qs}, pc.IntersectionAgg, hash, 2)
	if err != nil {
		return nil, err
	}
	res.rowf("aggregators over a hash partition: union correct=%v, intersection correct=%v", okUnion, okInter)
	if !okUnion || okInter {
		res.Pass = false
	}

	// 4. Multi-round correctness: the two-round shipped join is
	// correct on all bounded instances and placements.
	ref := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z)")
	algo := func(p int) []mpc.Round {
		return []mpc.Round{
			{
				Name:  "ship-R",
				Route: mpc.ByRelation(map[string]mpc.Router{"R": mpc.HashOn(p, []int{1}, 3)}),
				Keep:  func(f rel.Fact) bool { return f.Rel == "S" },
			},
			{
				Name:  "ship-S-and-join",
				Route: mpc.ByRelation(map[string]mpc.Router{"S": mpc.HashOn(p, []int{0}, 3)}),
				Keep:  func(f rel.Fact) bool { return f.Rel == "R" },
				Compute: func(_ int, local *rel.Instance) *rel.Instance {
					return cq.Output(ref, local)
				},
			},
		}
	}
	okMR, _, err := pc.MultiRoundCorrectBounded(ref, algo, 2, 2)
	if err != nil {
		return nil, err
	}
	res.rowf("multi-round checker: 2-round shipped join correct on all bounded instances = %v", okMR)
	if !okMR {
		res.Pass = false
	}
	return res, nil
}
