package experiments

import (
	"math/rand"

	"mpclogic/internal/cq"
	"mpclogic/internal/datalog"
	"mpclogic/internal/rel"
	"mpclogic/internal/scale"
	"mpclogic/internal/stream"
	"mpclogic/internal/workload"
)

// Two more Section 6 directions made executable: scale independence
// (Fan-Geerts-Libkin) and Blazes-style coordination analysis
// (Alvaro et al.).

func init() {
	register(Def{
		ID:    "SCALE-independence",
		Name:  "SCALE",
		Title: "scale independence (Fan-Geerts-Libkin, Section 6)",
		Claim: "a boundedly evaluable query touches a data-size-independent number of facts, fixed by query structure and access constraints",
		Cells: []Cell{{Params: "follows-2hop", Run: cellScale}},
	})
	register(Def{
		ID:    "BLAZES-coordination-analysis",
		Name:  "BLAZES",
		Title: "coordination analysis (Blazes; Alvaro et al., Section 6)",
		Claim: "program analysis finds where coordination is overused: only negated-IDB consumption needs a barrier; monotone strata stream",
		Cells: []Cell{{Params: "four-programs", Run: cellBlazes}},
	})
	register(Def{
		ID:    "STREAM-finite-memory",
		Name:  "STREAM",
		Title: "distributed streaming with finite memory (Neven et al., Section 3.2)",
		Claim: "register-automaton reducers over key groups express the semijoin algebra with memory independent of the data size",
		Cells: []Cell{{Params: "semijoin", Run: cellStream}},
	})
}

func cellScale() (*Result, error) {
	res := newResult()
	d := rel.NewDict()
	q := cq.MustParse(d, "H(y, z) :- Follows(0, y), Follows(y, z)")
	maxOut := 4
	cons := scale.Constraints{{Rel: "Follows", On: []int{0}, Fanout: maxOut}}
	plan, err := scale.Analyze(q, cons)
	if err != nil {
		return nil, err
	}
	res.rowf("plan bound: %d facts (4 + 4²·... independent of |D|)", plan.Bound)
	res.rowf("%-10s %-10s %-10s", "|D|", "fetched", "bound")
	for _, n := range []int{2000, 8000, 32000} {
		r := rand.New(rand.NewSource(7))
		inst := rel.NewInstance()
		for u := 0; u < n; u++ {
			k := r.Intn(maxOut + 1)
			for j := 0; j < k; j++ {
				inst.Add(rel.NewFact("Follows", rel.Value(u), rel.Value(r.Intn(n))))
			}
		}
		got, fetched, err := scale.Execute(plan, inst)
		if err != nil {
			return nil, err
		}
		if !got.Equal(cq.Evaluate(q, inst)) {
			res.Pass = false
			res.rowf("WRONG result at |D|=%d", inst.Len())
		}
		res.rowf("%-10d %-10d %-10d", inst.Len(), fetched, plan.Bound)
		if fetched > plan.Bound {
			res.Pass = false
		}
	}
	// An unbounded query is detected.
	if _, err := scale.Analyze(cq.MustParse(d, "H(x, y) :- Follows(x, y)"), cons); err == nil {
		res.Pass = false
		res.rowf("unbounded query accepted")
	} else {
		res.rowf("unbounded query correctly rejected: no constant entry point")
	}
	return res, nil
}

func cellBlazes() (*Result, error) {
	res := newResult()
	d := rel.NewDict()
	progs := []struct {
		name, src string
		barriers  int
	}{
		{"positive TC", "TC(x, y) :- E(x, y)\nTC(x, y) :- TC(x, z), E(z, y)", 0},
		{"semi-positive", "A(x) :- E(x, y), not F(x)\nB(x) :- A(x), not G(x)", 0},
		{"¬TC (Example 5.13)", "TC(x, y) :- E(x, y)\nTC(x, y) :- TC(x, z), TC(z, y)\nOUT(x, y) :- ADom(x), ADom(y), not TC(x, y)", 1},
		{"double negation", "A(x) :- E(x, y)\nB(x) :- ADom(x), not A(x)\nC(x) :- ADom(x), not B(x)", 2},
	}
	res.rowf("%-22s %-10s %-10s %-8s", "program", "barriers", "naive", "saved")
	for _, c := range progs {
		p := datalog.MustParse(d, c.src)
		r, err := datalog.AnalyzeCoordination(p)
		if err != nil {
			return nil, err
		}
		res.rowf("%-22s %-10d %-10d %-8d", c.name, len(r.Barriers), r.NaiveBarriers, r.Saved())
		if len(r.Barriers) != c.barriers {
			res.Pass = false
		}
	}
	return res, nil
}

func cellStream() (*Result, error) {
	res := newResult()
	n := &stream.Network{
		Machines:  4,
		Key:       stream.KeyOn(map[string][]int{"R": {1}, "S": {0}}),
		Automaton: stream.SemiJoin("R", "S"),
	}
	res.rowf("%-10s %-14s %-16s", "m", "largest group", "memory/group")
	for _, m := range []int{1000, 10000, 100000} {
		inst := workload.JoinSkewed(m, 0.5)
		out, st, err := n.Run(inst.Facts())
		if err != nil {
			return nil, err
		}
		want := rel.SemiJoin(inst.Relation("R"), inst.Relation("S"), []int{1}, []int{0})
		if !out.Relation("R").Equal(want) {
			res.Pass = false
			res.rowf("WRONG semijoin at m=%d", m)
		}
		res.rowf("%-10d %-14d %-16d", m, st.LargestGroup, st.MemoryPerGroup)
		if st.MemoryPerGroup != 1 {
			res.Pass = false
		}
	}
	return res, nil
}
