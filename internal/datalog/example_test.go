package datalog_test

import (
	"fmt"

	"mpclogic/internal/datalog"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

// Stratified evaluation of Example 5.13's semi-connected ¬TC program.
func ExampleEvalQuery() {
	d := rel.NewDict()
	p := datalog.MustParse(d, `
TC(x, y) :- E(x, y)
TC(x, y) :- TC(x, z), TC(z, y)
OUT(x, y) :- ADom(x), ADom(y), not TC(x, y)
`)
	out, _ := datalog.EvalQuery(p, workload.PathGraph(2), "OUT")
	fmt.Println(out.Len(), "unreachable pairs")
	// Output: 6 unreachable pairs
}

// The Figure 2 effective-syntax classifier.
func ExampleClassify() {
	d := rel.NewDict()
	tc := datalog.MustParse(d, "TC(x, y) :- E(x, y)\nTC(x, y) :- TC(x, z), E(z, y)")
	open := datalog.MustParse(d, "H(x, y, z) :- E(x, y), E(y, z), not E(z, x)")
	fmt.Println(datalog.Classify(tc).MonotonicityClass())
	fmt.Println(datalog.Classify(open).MonotonicityClass())
	// Output:
	// M
	// Mdistinct
}

// Win-move under the well-founded semantics: won, lost and drawn
// positions (Section 5.3).
func ExampleWellFounded() {
	d := rel.NewDict()
	p := datalog.WinMoveProgram(d)
	moves := rel.MustInstance(d, "Move(a,b)", "Move(b,c)", "Move(p,q)", "Move(q,p)")
	res, _ := datalog.WellFounded(p, moves)
	won := res.True.Relation("Win").Len()
	drawn := res.Undefined.Relation("Win").Len()
	fmt.Printf("won=%d drawn=%d\n", won, drawn)
	// Output: won=1 drawn=2
}

// The Blazes-style coordination analysis: only negated-IDB consumption
// needs a barrier.
func ExampleAnalyzeCoordination() {
	d := rel.NewDict()
	p := datalog.MustParse(d, `
A(x, y) :- E(x, y)
A(x, y) :- A(x, z), E(z, y)
OUT(x) :- ADom(x), not A(x, x)
`)
	rep, _ := datalog.AnalyzeCoordination(p)
	fmt.Println(rep.Barriers[0])
	// Output: stratum 1 waits on sealed {A}
}
