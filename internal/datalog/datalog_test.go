package datalog

import (
	"testing"

	"mpclogic/internal/cq"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

func TestEvalTransitiveClosure(t *testing.T) {
	d := rel.NewDict()
	p := MustParse(d, `
TC(x, y) :- E(x, y)
TC(x, y) :- TC(x, z), TC(z, y)
`)
	g := workload.PathGraph(10)
	out, err := EvalQuery(p, g, "TC")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 55 {
		t.Errorf("TC of 10-path = %d pairs, want 55", out.Len())
	}
	// Linear variant computes the same closure.
	p2 := MustParse(d, `
TC(x, y) :- E(x, y)
TC(x, y) :- TC(x, z), E(z, y)
`)
	out2, err := EvalQuery(p2, g, "TC")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(out2) {
		t.Errorf("linear and nonlinear TC disagree")
	}
}

func TestEvalAgainstNaive(t *testing.T) {
	d := rel.NewDict()
	p := MustParse(d, `
TC(x, y) :- E(x, y)
TC(x, y) :- TC(x, z), E(z, y)
`)
	for seed := int64(0); seed < 5; seed++ {
		g := workload.RandomGraph(12, 20, seed)
		out, err := EvalQuery(p, g, "TC")
		if err != nil {
			t.Fatal(err)
		}
		// Naive reference: iterate rules on full db until fixpoint.
		want := naiveEval(t, p, g, "TC")
		if !out.Equal(want) {
			t.Fatalf("seed %d: semi-naive %d vs naive %d facts", seed, out.Len(), want.Len())
		}
	}
}

func naiveEval(t *testing.T, p *Program, edb *rel.Instance, outRel string) *rel.Instance {
	t.Helper()
	db := edb.Clone()
	if p.UsesADom() {
		populateADom(db)
	}
	st, err := Stratify(p)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < st.Count; s++ {
		for {
			grew := false
			for _, ri := range st.RulesByStratum[s] {
				r := p.Rules[ri]
				res := evalRuleOn(r, db)
				res.Each(func(f rel.Fact) bool {
					if db.Add(f) {
						grew = true
					}
					return true
				})
			}
			if !grew {
				break
			}
		}
	}
	out := rel.NewInstance()
	if r := db.Relation(outRel); r != nil {
		out.SetRelation(r.Clone())
	}
	return out
}

func evalRuleOn(r *Rule, db *rel.Instance) *rel.Instance {
	out := rel.NewInstance()
	res := evalCQ(r, db)
	res.Each(func(f rel.Fact) bool {
		out.Add(f)
		return true
	})
	return out
}

func TestStratifiedNegation(t *testing.T) {
	d := rel.NewDict()
	// Example 5.13's ¬TC program.
	p := MustParse(d, `
TC(x, y) :- E(x, y)
TC(x, y) :- TC(x, z), TC(z, y)
OUT(x, y) :- ADom(x), ADom(y), not TC(x, y)
`)
	st, err := Stratify(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != 2 {
		t.Errorf("strata = %d, want 2", st.Count)
	}
	g := workload.PathGraph(3) // 0→1→2→3
	out, err := EvalQuery(p, g, "OUT")
	if err != nil {
		t.Fatal(err)
	}
	// adom = 4 values; 16 pairs; TC has 6; ¬TC has 10.
	if out.Len() != 10 {
		t.Errorf("¬TC = %d pairs, want 10", out.Len())
	}
	if out.Contains(rel.NewFact("OUT", 0, 3)) {
		t.Errorf("reachable pair in complement")
	}
	if !out.Contains(rel.NewFact("OUT", 3, 0)) {
		t.Errorf("unreachable pair missing from complement")
	}
}

func TestUnstratifiableRejected(t *testing.T) {
	d := rel.NewDict()
	p := MustParse(d, "Win(x) :- Move(x, y), not Win(y)")
	if _, err := Stratify(p); err == nil {
		t.Errorf("win-move stratified")
	}
	if _, err := Eval(p, rel.NewInstance()); err == nil {
		t.Errorf("Eval accepted unstratifiable program")
	}
}

func TestClassify(t *testing.T) {
	d := rel.NewDict()
	cases := []struct {
		src  string
		want string // MonotonicityClass
	}{
		{
			// Positive Datalog with inequality: in M.
			`Tri(x, y, z) :- E(x, y), E(y, z), E(z, x), x != y, y != z, z != x`,
			"M",
		},
		{
			// Semi-positive: negation on EDB only: Mdistinct.
			`Open(x, y, z) :- E(x, y), E(y, z), not E(z, x)`,
			"Mdistinct",
		},
		{
			// Example 5.13 ¬TC: stratified, first stratum connected,
			// last stratum may be disconnected: semi-connected →
			// Mdisjoint. (Negation on IDB TC, so not semi-positive.)
			`TC(x, y) :- E(x, y)
TC(x, y) :- TC(x, z), TC(z, y)
OUT(x, y) :- ADom(x), ADom(y), not TC(x, y)`,
			"Mdisjoint",
		},
	}
	for _, c := range cases {
		p := MustParse(d, c.src)
		got := Classify(p).MonotonicityClass()
		if got != c.want {
			t.Errorf("class of %q = %q, want %q", c.src, got, c.want)
		}
	}
}

// Example 5.13(2): the QNT program is NOT semi-connected because the
// rule for S has a disconnected body.
func TestExample513QNTNotSemiConnected(t *testing.T) {
	d := rel.NewDict()
	p := MustParse(d, `
T(x, y, z) :- E(x, y), E(y, z), E(z, x), y != x, y != z, x != z
S(x) :- ADom(x), T(u, v, w)
OUT(x, y) :- E(x, y), not S(x)
`)
	if IsSemiConnected(p) {
		t.Errorf("QNT program classified semi-connected; Example 5.13 says not")
	}
	if Classify(p).MonotonicityClass() != "" {
		t.Errorf("QNT program should have no syntactic monotonicity guarantee")
	}
	// It still evaluates fine under stratified semantics.
	tri := rel.MustInstance(d, "E(1,2)", "E(2,3)", "E(3,1)", "E(7,8)")
	out, err := EvalQuery(p, tri, "OUT")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("graph has a triangle; QNT should be empty, got %v", out)
	}
	noTri := rel.MustInstance(d, "E(1,2)", "E(2,3)")
	out2, err := EvalQuery(p, noTri, "OUT")
	if err != nil {
		t.Fatal(err)
	}
	if out2.Len() != 2 {
		t.Errorf("no triangle: QNT should return all edges, got %d", out2.Len())
	}
}

func TestExample513SemiConnected(t *testing.T) {
	d := rel.NewDict()
	p := MustParse(d, `
TC(x, y) :- E(x, y)
TC(x, y) :- TC(x, z), TC(z, y)
OUT(x, y) :- ADom(x), ADom(y), not TC(x, y)
`)
	if !IsSemiConnected(p) {
		t.Errorf("¬TC program should be semi-connected (Example 5.13)")
	}
	if IsConnected(p) {
		t.Errorf("¬TC program's last stratum is disconnected, so the program is not connected")
	}
	if IsSemiPositive(p) {
		t.Errorf("¬TC negates IDB TC; not semi-positive")
	}
}

func TestWellFoundedWinMove(t *testing.T) {
	d := rel.NewDict()
	p := WinMoveProgram(d)
	// Game graph: 0→1→2 (2 stuck: 2 lost, 1 won, 0 lost),
	// and a draw cycle 10→11→10, plus 20→21, 21→22, 22→21.
	moves := rel.MustInstance(d,
		"Move(0,1)", "Move(1,2)",
		"Move(10,11)", "Move(11,10)",
		"Move(20,21)", "Move(21,22)", "Move(22,21)",
	)
	res, err := WellFounded(p, moves)
	if err != nil {
		t.Fatal(err)
	}
	win := func(name string) bool {
		v, _ := d.Lookup(name)
		return res.True.Contains(rel.NewFact("Win", v))
	}
	draw := func(name string) bool {
		v, _ := d.Lookup(name)
		return res.Undefined.Contains(rel.NewFact("Win", v))
	}

	if !win("1") {
		t.Errorf("position 1 should be won (move to stuck 2)")
	}
	if win("0") || draw("0") {
		t.Errorf("position 0 should be lost")
	}
	if win("2") || draw("2") {
		t.Errorf("position 2 (stuck) should be lost")
	}
	if !draw("10") || !draw("11") {
		t.Errorf("cycle 10↔11 should be drawn")
	}
	// 21↔22 cycle with no escape: drawn; 20 moves into a draw: can 20
	// win? 20→21; if 21 is drawn, 20 is not won; 20 has no other move,
	// and its only successor is not lost, so 20 is drawn? In
	// well-founded terms Win(20) is undefined iff some successor is
	// undefined and none is false. 21 is undefined → Win(20) undefined.
	if !draw("20") || !draw("21") || !draw("22") {
		t.Errorf("20,21,22 should all be drawn; got win=%v/%v/%v draw=%v/%v/%v",
			win("20"), win("21"), win("22"), draw("20"), draw("21"), draw("22"))
	}
}

func TestWellFoundedAgreesWithStratifiedWhenStratifiable(t *testing.T) {
	d := rel.NewDict()
	p := MustParse(d, `
TC(x, y) :- E(x, y)
TC(x, y) :- TC(x, z), TC(z, y)
OUT(x, y) :- ADom(x), ADom(y), not TC(x, y)
`)
	g := workload.PathGraph(4)
	strat, err := EvalQuery(p, g, "OUT")
	if err != nil {
		t.Fatal(err)
	}
	wf, err := WellFounded(p, g)
	if err != nil {
		t.Fatal(err)
	}
	wfOut := rel.NewInstance()
	wf.True.Each(func(f rel.Fact) bool {
		if f.Rel == "OUT" {
			wfOut.Add(f)
		}
		return true
	})
	if !wfOut.Equal(strat) {
		t.Errorf("well-founded and stratified disagree on stratifiable program")
	}
	if wf.Undefined.Len() != 0 {
		t.Errorf("stratifiable program has undefined facts")
	}
}

func TestParseErrorsAndComments(t *testing.T) {
	d := rel.NewDict()
	if _, err := Parse(d, "% only a comment\n\n"); err == nil {
		t.Errorf("empty program accepted")
	}
	if _, err := Parse(d, "TC(x, y) :- E(x, y)\nbroken("); err == nil {
		t.Errorf("broken rule accepted")
	}
	p := MustParse(d, "% closure\nTC(x, y) :- E(x, y)")
	if len(p.Rules) != 1 {
		t.Errorf("comment handling broke rule count")
	}
	if _, err := Parse(d, "A(x) :- E(x, y)\nA(x, y) :- E(x, y)"); err == nil {
		t.Errorf("inconsistent head arity accepted")
	}
}

func TestValueInvention(t *testing.T) {
	d := rel.NewDict()
	// Invent one node per edge (a "reification" rule).
	p, err := ParseInvention(d, "N(x, y, w) :- E(x, y)")
	if err != nil {
		t.Fatal(err)
	}
	edb := rel.MustInstance(d, "E(1,2)", "E(2,3)")
	out, rounds, err := EvalInvention(p, edb)
	if err != nil {
		t.Fatal(err)
	}
	if rounds < 1 {
		t.Errorf("rounds = %d", rounds)
	}
	n := out.Relation("N")
	if n == nil || n.Len() != 2 {
		t.Fatalf("invented %v", out)
	}
	// Invented values are fresh and distinct per binding.
	seen := map[rel.Value]bool{}
	n.Each(func(tu rel.Tuple) bool {
		w := tu[2]
		if w < inventionBase {
			t.Errorf("invented value %d collides with data", w)
		}
		if seen[w] {
			t.Errorf("same skolem for different bindings")
		}
		seen[w] = true
		return true
	})
	// Determinism: rerun gives the same result.
	out2, _, err := EvalInvention(p, edb)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(out2) {
		t.Errorf("invention nondeterministic")
	}
}

func TestValueInventionDivergenceBounded(t *testing.T) {
	d := rel.NewDict()
	// Each N invents a successor: diverges; must hit the bound.
	p, err := ParseInvention(d, "N(y) :- N(x)\nN(w) :- Seed(x)")
	if err != nil {
		t.Fatal(err)
	}
	_ = p
	// The first rule is safe (y... actually y unbound: invented).
	p.MaxRounds = 10
	_, _, err = EvalInvention(p, rel.MustInstance(d, "Seed(1)"))
	if err == nil {
		t.Errorf("divergent invention converged?")
	}
}

func TestProgramAccessors(t *testing.T) {
	d := rel.NewDict()
	p := MustParse(d, `
TC(x, y) :- E(x, y)
OUT(x, y) :- ADom(x), ADom(y), not TC(x, y)
`)
	idb := p.IDB()
	if !idb["TC"] || !idb["OUT"] || idb["E"] {
		t.Errorf("IDB = %v", idb)
	}
	rels := p.Relations()
	if len(rels) != 4 { // ADom, E, OUT, TC
		t.Errorf("Relations = %v", rels)
	}
	if !p.UsesADom() {
		t.Errorf("UsesADom false")
	}
	if p.String() == "" {
		t.Errorf("empty String")
	}
	st, _ := Stratify(p)
	order := st.StrataOrder()
	if len(order) != 2 || order[0] != "TC" || order[1] != "OUT" {
		t.Errorf("StrataOrder = %v", order)
	}
}

// evalCQ applies one rule on db, returning derived head facts.
func evalCQ(r *Rule, db *rel.Instance) *rel.Instance {
	out := rel.NewInstance()
	cq.Evaluate(r, db).Each(func(t rel.Tuple) bool {
		out.Add(rel.Fact{Rel: r.Head.Rel, Tuple: t})
		return true
	})
	return out
}

// Connected positive Datalog programs distribute over components
// (Ameloot-Ketsman-Neven-Zinn, ICDT 2015): cross-checked against the
// bounded component checker for a small program zoo.
func TestConnectedProgramsDistributeOverComponents(t *testing.T) {
	d := rel.NewDict()
	progs := []struct {
		src       string
		out       string
		connected bool
	}{
		{"TC(x, y) :- E(x, y)\nTC(x, y) :- TC(x, z), E(z, y)", "TC", true},
		{"Tri(x, y, z) :- E(x, y), E(y, z), E(z, x)", "Tri", true},
		// A disconnected rule: pairs of vertices from anywhere.
		{"P(x, y) :- E(x, u), E(y, v)", "P", false},
	}
	universe := []rel.Value{0, 1, 2}
	for _, c := range progs {
		p := MustParse(d, c.src)
		if got := IsConnected(p); got != c.connected {
			t.Errorf("IsConnected(%q) = %v, want %v", c.src, got, c.connected)
			continue
		}
		q := func(i *rel.Instance) *rel.Instance {
			out, err := EvalQuery(p, i, c.out)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		distributes := checkDistributesOverComponents(q, rel.Schema{"E": 2}, universe)
		if c.connected && !distributes {
			t.Errorf("connected program %q does not distribute over components", c.src)
		}
		if !c.connected && distributes {
			t.Errorf("disconnected program %q unexpectedly distributes", c.src)
		}
	}
}

func checkDistributesOverComponents(q func(*rel.Instance) *rel.Instance, schema rel.Schema, universe []rel.Value) bool {
	facts := schema.AllFacts(universe)
	ok := true
	for mask := 0; mask < 1<<len(facts); mask++ {
		inst := rel.NewInstance()
		for b, f := range facts {
			if mask&(1<<b) != 0 {
				inst.Add(f)
			}
		}
		union := rel.NewInstance()
		for _, j := range rel.Components(inst) {
			union.AddAll(q(j))
		}
		if !union.Equal(q(inst)) {
			ok = false
			break
		}
	}
	return ok
}

func TestStratifyMultipleStrata(t *testing.T) {
	d := rel.NewDict()
	p := MustParse(d, `
A(x) :- E(x, y)
B(x) :- ADom(x), not A(x)
C(x) :- ADom(x), not B(x)
`)
	st, err := Stratify(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != 3 {
		t.Errorf("strata = %d, want 3", st.Count)
	}
	g := workload.PathGraph(2) // values 0,1,2; A = {0,1}
	out, err := EvalQuery(p, g, "C")
	if err != nil {
		t.Fatal(err)
	}
	// B = {2}; C = {0,1}.
	if out.Len() != 2 || !out.Contains(rel.NewFact("C", 0)) {
		t.Errorf("C = %v", out)
	}
}

func TestWellFoundedUnreachableEDBNegation(t *testing.T) {
	d := rel.NewDict()
	// EDB negation inside an unstratifiable program: ¬Blocked is
	// evaluated against the database, ¬Win against the alternating
	// fixpoint.
	p := MustParse(d, "Win(x) :- Move(x, y), not Win(y), not Blocked(x)")
	moves := rel.MustInstance(d, "Move(0,1)", "Blocked(0)", "Move(1,2)")
	res, err := WellFounded(p, moves)
	if err != nil {
		t.Fatal(err)
	}
	if res.True.Contains(rel.NewFact("Win", 0)) {
		t.Errorf("blocked position won")
	}
	if !res.True.Contains(rel.NewFact("Win", 1)) {
		t.Errorf("position 1 should win (2 is stuck)")
	}
}

// Blazes-style coordination analysis: positive strata stream; only
// strata consuming negated IDB relations need barriers.
func TestAnalyzeCoordination(t *testing.T) {
	d := rel.NewDict()
	// Pure positive recursion: zero barriers needed even though the
	// naive executor would still run it as one stratum.
	pos := MustParse(d, "TC(x, y) :- E(x, y)\nTC(x, y) :- TC(x, z), E(z, y)")
	rep, err := AnalyzeCoordination(pos)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Barriers) != 0 || len(rep.MonotoneStrata) != rep.Strata {
		t.Errorf("positive program needs barriers: %+v", rep)
	}

	// A 3-stratum program where the middle dependency is positive:
	// stratum 1 builds on stratum 0 monotonically (streams), stratum 2
	// negates — exactly one barrier versus two naive ones.
	p := MustParse(d, `
A(x, y) :- E(x, y)
A(x, y) :- A(x, z), E(z, y)
B(x, y) :- A(x, y), E(y, x)
OUT(x) :- ADom(x), not B(x, x)
`)
	rep, err = AnalyzeCoordination(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Strata != 2 {
		// A and B are both stratum 0 (positive deps), OUT stratum 1.
		t.Fatalf("strata = %d", rep.Strata)
	}
	if len(rep.Barriers) != 1 {
		t.Fatalf("barriers = %v", rep.Barriers)
	}
	if rep.Barriers[0].BeforeStratum != 1 || rep.Barriers[0].OnRelations[0] != "B" {
		t.Errorf("barrier = %v", rep.Barriers[0])
	}
	// Naive edges: A→B (positive, streams) and B→OUT (negative,
	// barrier): one barrier saved.
	if rep.NaiveBarriers != 2 || rep.Saved() != 1 {
		t.Errorf("naive = %d saved = %d, want 2/1", rep.NaiveBarriers, rep.Saved())
	}
	if rep.Barriers[0].String() == "" {
		t.Errorf("empty barrier string")
	}

	// Deeper chain with only positive inter-stratum edges collapses to
	// one stratum → all naive barriers saved. Force multiple strata
	// with EDB negation (no IDB barrier needed).
	sp := MustParse(d, `
A(x) :- E(x, y), not F(x)
B(x) :- A(x), not G(x)
`)
	rep, err = AnalyzeCoordination(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Barriers) != 0 {
		t.Errorf("EDB negation should need no barriers: %v", rep.Barriers)
	}

	// Unstratifiable input is rejected.
	if _, err := AnalyzeCoordination(MustParse(d, "Win(x) :- Move(x, y), not Win(y)")); err == nil {
		t.Errorf("win-move accepted by coordination analysis")
	}
}
