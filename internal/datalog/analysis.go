package datalog

import (
	"mpclogic/internal/cq"
)

// This file implements the syntactic classifications of Section 5.3
// and Figure 2: positive Datalog (⊆ M), Datalog with inequalities
// (still ⊆ M), semi-positive Datalog — negation on EDB relations only
// (⊆ Mdistinct), connected rules, and semi-connected stratified
// programs — every stratum except possibly the last connected
// (⊆ Mdisjoint).

// IsPositive reports whether the program has no negated atoms at all
// (inequalities are allowed: Datalog(≠) is still monotone).
func IsPositive(p *Program) bool {
	for _, r := range p.Rules {
		if r.HasNegation() {
			return false
		}
	}
	return true
}

// IsSemiPositive reports whether negation is applied only to EDB
// relations (and the built-in ADom), the fragment Afrati, Cosmadakis
// and Yannakakis placed inside Mdistinct.
func IsSemiPositive(p *Program) bool {
	idb := p.IDB()
	for _, r := range p.Rules {
		for _, a := range r.Neg {
			if idb[a.Rel] {
				return false
			}
		}
	}
	return true
}

// RuleConnected reports whether the rule's positive atoms form a
// connected graph under shared variables (Section 5.3's notion; the
// ADom guard atoms of Example 5.13 participate like any other atom).
func RuleConnected(r *Rule) bool {
	return cq.IsConnected(r)
}

// IsConnected reports whether every rule of the program is connected —
// the effective syntax for Datalog queries distributing over
// components (Ameloot et al., ICDT 2015).
func IsConnected(p *Program) bool {
	for _, r := range p.Rules {
		if !RuleConnected(r) {
			return false
		}
	}
	return true
}

// IsSemiConnected reports whether the program is stratifiable and
// every stratum except possibly the last consists of connected rules
// only — the fragment that (with value invention) captures Mdisjoint.
func IsSemiConnected(p *Program) bool {
	st, err := Stratify(p)
	if err != nil {
		return false
	}
	for s := 0; s < st.Count-1; s++ {
		for _, ri := range st.RulesByStratum[s] {
			if !RuleConnected(p.Rules[ri]) {
				return false
			}
		}
	}
	return true
}

// Classification summarizes where a program sits in the Figure 2
// hierarchy.
type Classification struct {
	Positive      bool // Datalog(≠): monotone, in M
	SemiPositive  bool // SP-Datalog: in Mdistinct
	Stratifiable  bool
	Connected     bool // distributes over components
	SemiConnected bool // semicon-Datalog: in Mdisjoint
	Strata        int
}

// Classify computes the full classification.
func Classify(p *Program) Classification {
	c := Classification{
		Positive:      IsPositive(p),
		SemiPositive:  IsSemiPositive(p),
		Connected:     IsConnected(p),
		SemiConnected: IsSemiConnected(p),
	}
	if st, err := Stratify(p); err == nil {
		c.Stratifiable = true
		c.Strata = st.Count
	}
	return c
}

// MonotonicityClass returns the strongest Figure 2 membership the
// syntax guarantees: "M" for positive programs, "Mdistinct" for
// semi-positive ones, "Mdisjoint" for semi-connected stratified ones,
// and "" when no guarantee applies.
func (c Classification) MonotonicityClass() string {
	switch {
	case c.Positive:
		return "M"
	case c.SemiPositive:
		return "Mdistinct"
	case c.SemiConnected:
		return "Mdisjoint"
	default:
		return ""
	}
}
