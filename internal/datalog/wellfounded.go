package datalog

import (
	"fmt"

	"mpclogic/internal/cq"
	"mpclogic/internal/rel"
)

// Well-founded semantics via the alternating fixpoint of Van Gelder:
// Γ(J) is the least fixpoint of the program with every negated IDB
// atom ¬B(t̄) read as "t̄ ∉ J". Γ is antimonotone, so Γ² is monotone;
// iterating K₀=∅, U₀=Γ(K₀), K₁=Γ(U₀), … converges with K = true
// facts and U = true-or-undefined facts. Section 5.3 uses this for
// win-move (Zinn, Green, Ludäscher), which is unstratifiable.

// WFResult holds the three-valued model restricted to IDB facts.
type WFResult struct {
	True      *rel.Instance // facts true in the well-founded model
	Undefined *rel.Instance // facts undefined (drawn positions in win-move)
	DB        *rel.Instance // EDB ∪ True, convenience
}

// WellFounded computes the well-founded model of the program on edb.
func WellFounded(p *Program, edb *rel.Instance) (*WFResult, error) {
	idb := p.IDB()
	base := edb.Clone()
	if p.UsesADom() {
		populateADom(base)
	}

	// gamma computes Γ(J): the least fixpoint where ¬B(t̄) for IDB B
	// holds iff B(t̄) ∉ J (EDB negation reads base as usual).
	gamma := func(j *rel.Instance) (*rel.Instance, error) {
		db := base.Clone()
		for {
			grew := false
			for _, r := range p.Rules {
				res, err := evalRuleWF(r, db, j, idb)
				if err != nil {
					return nil, err
				}
				res.Each(func(f rel.Fact) bool {
					if db.Add(f) {
						grew = true
					}
					return true
				})
			}
			if !grew {
				return db, nil
			}
		}
	}

	k := rel.NewInstance() // under-approximation of true facts
	var u *rel.Instance    // over-approximation
	for {
		u2, err := gamma(k)
		if err != nil {
			return nil, err
		}
		k2, err := gamma(u2)
		if err != nil {
			return nil, err
		}
		if u != nil && k2.Equal(k) && u2.Equal(u) {
			break
		}
		k, u = k2, u2
	}

	res := &WFResult{True: rel.NewInstance(), Undefined: rel.NewInstance(), DB: k.Clone()}
	k.Each(func(f rel.Fact) bool {
		if idb[f.Rel] {
			res.True.Add(f)
		}
		return true
	})
	u.Each(func(f rel.Fact) bool {
		if idb[f.Rel] && !k.Contains(f) {
			res.Undefined.Add(f)
		}
		return true
	})
	return res, nil
}

// evalRuleWF evaluates one rule where negated IDB atoms consult j and
// negated EDB atoms consult the actual database. It builds a view
// instance in which each negated IDB relation is replaced by j's
// version under a reserved name.
func evalRuleWF(r *Rule, db, j *rel.Instance, idb map[string]bool) (*rel.Instance, error) {
	view := shallowView(db)
	rr := r.Clone()
	for i, a := range rr.Neg {
		if !idb[a.Rel] {
			continue
		}
		alias := fmt.Sprintf("¬%d·%s", i, a.Rel)
		jr := j.Relation(a.Rel)
		if jr == nil {
			jr = rel.NewRelation(a.Rel, len(a.Args))
		}
		aliased := jr.Clone()
		aliased.Name = alias
		view.SetRelation(aliased)
		rr.Neg[i].Rel = alias
	}
	out := rel.NewInstance()
	res := cq.Evaluate(rr, view)
	res.Each(func(t rel.Tuple) bool {
		out.Add(rel.Fact{Rel: r.Head.Rel, Tuple: t})
		return true
	})
	return out, nil
}

// WinMoveProgram returns the classic win-move program over an EDB
// relation Move(x, y): Win(x) ← Move(x, y), ¬Win(y).
func WinMoveProgram(d *rel.Dict) *Program {
	return MustParse(d, "Win(x) :- Move(x, y), not Win(y)")
}
