package datalog

import (
	"fmt"
	"sort"
)

// Stratification assigns every IDB predicate a stratum such that
// positive dependencies stay within or below a stratum and negative
// dependencies point strictly below. Programs with a negative cycle
// are not stratifiable (win-move; use well-founded semantics instead).
type Stratification struct {
	// Stratum maps each IDB predicate to its stratum (0-based).
	Stratum map[string]int
	// Count is the number of strata.
	Count int
	// RulesByStratum groups rule indices by the stratum of their head.
	RulesByStratum [][]int
}

// Stratify computes a stratification, or an error when the program has
// a cycle through negation.
func Stratify(p *Program) (*Stratification, error) {
	idb := p.IDB()
	// strat[q] starts at 0; relax: q ≥ p for positive p in body of a
	// q-rule, q ≥ p+1 for negated IDB p. Classic Bellman-Ford style:
	// at most |idb| relaxation sweeps, else negative cycle.
	strat := map[string]int{}
	for q := range idb {
		strat[q] = 0
	}
	n := len(idb)
	for sweep := 0; sweep <= n; sweep++ {
		changed := false
		for _, r := range p.Rules {
			h := r.Head.Rel
			for _, a := range r.Body {
				if idb[a.Rel] && strat[h] < strat[a.Rel] {
					strat[h] = strat[a.Rel]
					changed = true
				}
			}
			for _, a := range r.Neg {
				if idb[a.Rel] && strat[h] < strat[a.Rel]+1 {
					strat[h] = strat[a.Rel] + 1
					changed = true
				}
			}
		}
		if !changed {
			break
		}
		if sweep == n {
			return nil, fmt.Errorf("datalog: program is not stratifiable (cycle through negation)")
		}
	}
	count := 0
	for _, s := range strat {
		if s+1 > count {
			count = s + 1
		}
	}
	if count == 0 {
		count = 1
	}
	st := &Stratification{Stratum: strat, Count: count, RulesByStratum: make([][]int, count)}
	for i, r := range p.Rules {
		s := strat[r.Head.Rel]
		st.RulesByStratum[s] = append(st.RulesByStratum[s], i)
	}
	return st, nil
}

// IsStratifiable reports whether the program admits a stratification.
func IsStratifiable(p *Program) bool {
	_, err := Stratify(p)
	return err == nil
}

// StrataOrder returns the IDB predicates sorted by (stratum, name) —
// useful for deterministic reporting.
func (s *Stratification) StrataOrder() []string {
	out := make([]string, 0, len(s.Stratum))
	for q := range s.Stratum {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := s.Stratum[out[i]], s.Stratum[out[j]]
		if si != sj {
			return si < sj
		}
		return out[i] < out[j]
	})
	return out
}
