// Package datalog implements the Datalog dialects of Section 5.3 of
// Neven (PODS 2016): Datalog with inequalities, semi-positive Datalog
// (negation on EDB relations only), stratified Datalog with negation,
// the connectedness notions behind semi-connected Datalog, well-founded
// semantics (for win-move), and a bounded form of value invention
// (wILOG). Evaluation is semi-naive with strata.
package datalog

import (
	"fmt"
	"sort"
	"strings"

	"mpclogic/internal/cq"
	"mpclogic/internal/rel"
)

// ADomRel is the reserved relation name for the active-domain
// predicate used by programs like Example 5.13; the evaluator
// populates it from the EDB automatically when a program mentions it
// without defining it.
const ADomRel = "ADom"

// Rule is a Datalog rule; structurally it is a conjunctive query whose
// head relation is an IDB predicate. Negated atoms and inequalities
// follow the cq conventions.
type Rule = cq.CQ

// Program is a list of rules evaluated as one Datalog program.
type Program struct {
	Rules []*Rule
}

// Parse parses a program: one rule per line; blank lines and lines
// starting with '%' are ignored.
func Parse(d *rel.Dict, src string) (*Program, error) {
	p := &Program{}
	for ln, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		r, err := cq.Parse(d, line)
		if err != nil {
			return nil, fmt.Errorf("datalog: line %d: %w", ln+1, err)
		}
		p.Rules = append(p.Rules, r)
	}
	if len(p.Rules) == 0 {
		return nil, fmt.Errorf("datalog: empty program")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustParse is Parse that panics on error.
func MustParse(d *rel.Dict, src string) *Program {
	p, err := Parse(d, src)
	if err != nil {
		panic(err)
	}
	return p
}

// IDB returns the set of intensional relations (those occurring in
// rule heads).
func (p *Program) IDB() map[string]bool {
	out := map[string]bool{}
	for _, r := range p.Rules {
		out[r.Head.Rel] = true
	}
	return out
}

// Relations returns every relation mentioned by the program, sorted.
func (p *Program) Relations() []string {
	seen := map[string]bool{}
	for _, r := range p.Rules {
		seen[r.Head.Rel] = true
		for _, a := range r.Body {
			seen[a.Rel] = true
		}
		for _, a := range r.Neg {
			seen[a.Rel] = true
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// UsesADom reports whether the program mentions the reserved ADom
// relation without defining it.
func (p *Program) UsesADom() bool {
	idb := p.IDB()
	if idb[ADomRel] {
		return false
	}
	for _, r := range p.Rules {
		for _, a := range r.Body {
			if a.Rel == ADomRel {
				return true
			}
		}
		for _, a := range r.Neg {
			if a.Rel == ADomRel {
				return true
			}
		}
	}
	return false
}

// Validate checks rule safety and consistent arities.
func (p *Program) Validate() error {
	schema := rel.Schema{}
	for _, r := range p.Rules {
		if err := r.Validate(); err != nil {
			return err
		}
		if err := schema.Declare(r.Head.Rel, len(r.Head.Args)); err != nil {
			return err
		}
		for _, a := range r.Body {
			if err := schema.Declare(a.Rel, len(a.Args)); err != nil {
				return err
			}
		}
		for _, a := range r.Neg {
			if err := schema.Declare(a.Rel, len(a.Args)); err != nil {
				return err
			}
		}
	}
	return nil
}

// String renders the program, one rule per line.
func (p *Program) String() string {
	parts := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, "\n")
}
