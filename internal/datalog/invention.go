package datalog

import (
	"fmt"
	"sort"

	"mpclogic/internal/cq"
	"mpclogic/internal/rel"
)

// Value invention (the wILOG extension of Figure 2, after Cabibbo):
// rules may use head variables that do not occur in the body; each
// satisfying binding of the body invents a fresh domain value per such
// variable, deterministically (skolemized on the rule and binding), so
// evaluation is repeatable. Because invention can cascade, evaluation
// is bounded by a configurable number of rounds.

// InventionProgram is a Datalog program whose rules may invent values.
type InventionProgram struct {
	Rules []*Rule
	// MaxRounds bounds fixpoint iteration (invention may not
	// terminate); 0 means DefaultInventionRounds.
	MaxRounds int
}

// DefaultInventionRounds bounds invention cascades.
const DefaultInventionRounds = 64

// inventionBase is where skolem values start; keep far away from data.
const inventionBase = rel.Value(1) << 40

// ParseInvention parses a program allowing invented head variables.
func ParseInvention(d *rel.Dict, src string) (*InventionProgram, error) {
	p := &InventionProgram{}
	base, err := parseLoose(d, src)
	if err != nil {
		return nil, err
	}
	p.Rules = base
	return p, nil
}

// parseLoose parses rules but skips the head-safety check (invented
// variables are exactly the unsafe head variables).
func parseLoose(d *rel.Dict, src string) ([]*Rule, error) {
	var rules []*Rule
	for _, line := range splitRules(src) {
		r, err := cq.Parse(d, line)
		if err == nil {
			rules = append(rules, r)
			continue
		}
		// Retry with a safety escape: add a dummy guard binding the
		// unsafe head variables is wrong; instead parse manually by
		// relaxing validation: reconstruct via cq parse of a safened
		// variant and mark invented vars.
		r2, err2 := parseUnsafe(d, line)
		if err2 != nil {
			return nil, fmt.Errorf("datalog: %v", err)
		}
		rules = append(rules, r2)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("datalog: empty program")
	}
	return rules, nil
}

func splitRules(src string) []string {
	var out []string
	for _, line := range splitLines(src) {
		if line == "" || line[0] == '%' {
			continue
		}
		out = append(out, line)
	}
	return out
}

func splitLines(src string) []string {
	var out []string
	cur := ""
	for _, r := range src {
		if r == '\n' {
			out = append(out, trim(cur))
			cur = ""
			continue
		}
		cur += string(r)
	}
	out = append(out, trim(cur))
	return out
}

func trim(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t' || s[0] == '\r') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t' || s[len(s)-1] == '\r') {
		s = s[:len(s)-1]
	}
	return s
}

// parseUnsafe parses a rule whose head may contain invented variables
// by temporarily guarding them with a dummy atom, then removing it.
func parseUnsafe(d *rel.Dict, line string) (*Rule, error) {
	const guard = "XXinvguardXX"
	// Parse leniently: append a guard atom binding every identifier in
	// the head; over-binding is harmless since we drop the guard.
	head, rest, ok := splitArrow(line)
	if !ok {
		return nil, fmt.Errorf("malformed rule %q", line)
	}
	hAtomSrc := trim(head)
	vars := identifierList(hAtomSrc)
	if len(vars) == 0 {
		return nil, fmt.Errorf("malformed rule %q", line)
	}
	guarded := hAtomSrc + " :- " + trim(rest) + ", " + guard + "(" + join(vars, ", ") + ")"
	r, err := cq.Parse(d, guarded)
	if err != nil {
		return nil, err
	}
	// Drop the guard atom.
	var body []cq.Atom
	for _, a := range r.Body {
		if a.Rel != guard {
			body = append(body, a)
		}
	}
	r.Body = body
	return r, nil
}

func splitArrow(s string) (string, string, bool) {
	for i := 0; i+1 < len(s); i++ {
		if (s[i] == ':' && s[i+1] == '-') || (s[i] == '<' && s[i+1] == '-') {
			return s[:i], s[i+2:], true
		}
	}
	return "", "", false
}

// identifierList extracts the identifiers inside the head atom's
// parentheses.
func identifierList(atom string) []string {
	open := -1
	for i := 0; i < len(atom); i++ {
		if atom[i] == '(' {
			open = i
			break
		}
	}
	if open < 0 || atom[len(atom)-1] != ')' {
		return nil
	}
	inner := atom[open+1 : len(atom)-1]
	var out []string
	cur := ""
	for i := 0; i <= len(inner); i++ {
		if i == len(inner) || inner[i] == ',' {
			t := trim(cur)
			if t != "" {
				out = append(out, t)
			}
			cur = ""
			continue
		}
		cur += string(inner[i])
	}
	return out
}

func join(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}

// InventedVars returns the head variables of r that do not occur in
// the body (the invented positions).
func InventedVars(r *Rule) []string {
	bv := r.BodyVars()
	var out []string
	seen := map[string]bool{}
	for _, t := range r.Head.Args {
		if t.IsVar() && !bv[t.Var] && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	return out
}

// EvalInvention evaluates the program bottom-up; invented values are
// skolem terms determined by (rule index, invented variable, body
// binding), so re-derivations reuse the same value and evaluation is
// deterministic. Iteration stops at fixpoint or after MaxRounds.
func EvalInvention(p *InventionProgram, edb *rel.Instance) (*rel.Instance, int, error) {
	max := p.MaxRounds
	if max <= 0 {
		max = DefaultInventionRounds
	}
	db := edb.Clone()
	usesADom := false
	for _, r := range p.Rules {
		for _, a := range r.Body {
			if a.Rel == ADomRel {
				usesADom = true
			}
		}
	}
	if usesADom {
		populateADom(db)
	}
	skolem := map[string]rel.Value{}
	nextSkolem := inventionBase

	rounds := 0
	for ; rounds < max; rounds++ {
		grew := false
		for ri, r := range p.Rules {
			inv := InventedVars(r)
			if len(inv) == 0 {
				res := cq.Evaluate(r, db)
				res.Each(func(t rel.Tuple) bool {
					if db.Add(rel.Fact{Rel: r.Head.Rel, Tuple: t}) {
						grew = true
					}
					return true
				})
				continue
			}
			// Enumerate body bindings in deterministic (sorted) order so
			// skolem values are reproducible across runs.
			vals := cq.SatisfyingValuations(r, db)
			sort.Slice(vals, func(a, b int) bool {
				return bindingKey(r, vals[a]) < bindingKey(r, vals[b])
			})
			for _, v := range vals {
				key := fmt.Sprintf("%d|%v", ri, bindingKey(r, v))
				for _, iv := range inv {
					sk := key + "|" + iv
					val, ok := skolem[sk]
					if !ok {
						val = nextSkolem
						nextSkolem++
						skolem[sk] = val
					}
					v[iv] = val
				}
				f := v.Apply(r.Head)
				if db.Add(f) {
					grew = true
				}
			}
		}
		if !grew {
			return db, rounds + 1, nil
		}
	}
	return db, rounds, fmt.Errorf("datalog: invention did not converge within %d rounds", max)
}

func bindingKey(r *Rule, v cq.Valuation) string {
	out := ""
	for _, name := range r.Vars() {
		if val, ok := v[name]; ok {
			out += fmt.Sprintf("%s=%d;", name, int64(val))
		}
	}
	return out
}
