package datalog

import (
	"mpclogic/internal/cq"
	"mpclogic/internal/rel"
)

// Eval computes the stratified semantics of the program on the given
// EDB: strata are evaluated bottom-up, each to its least fixpoint with
// semi-naive iteration. The result contains the EDB plus all derived
// facts (including ADom when the program uses it).
func Eval(p *Program, edb *rel.Instance) (*rel.Instance, error) {
	st, err := Stratify(p)
	if err != nil {
		return nil, err
	}
	db := edb.Clone()
	if p.UsesADom() {
		populateADom(db)
	}
	for s := 0; s < st.Count; s++ {
		if err := evalStratum(p, st.RulesByStratum[s], db); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// EvalQuery evaluates the program and projects the result onto one
// output relation.
func EvalQuery(p *Program, edb *rel.Instance, outRel string) (*rel.Instance, error) {
	db, err := Eval(p, edb)
	if err != nil {
		return nil, err
	}
	out := rel.NewInstance()
	if r := db.Relation(outRel); r != nil {
		out.SetRelation(r.Clone())
	}
	return out, nil
}

func populateADom(db *rel.Instance) {
	adom := db.ADom()
	r := db.EnsureRelation(ADomRel, 1)
	for v := range adom {
		r.Add(rel.Tuple{v})
	}
}

// evalStratum runs semi-naive iteration for one stratum's rules over
// db, mutating db in place. Negated atoms refer to relations that are
// complete at this point (EDB or lower strata) by stratification.
func evalStratum(p *Program, ruleIdx []int, db *rel.Instance) error {
	if len(ruleIdx) == 0 {
		return nil
	}
	// Which relations are being defined in this stratum?
	defined := map[string]bool{}
	for _, ri := range ruleIdx {
		defined[p.Rules[ri].Head.Rel] = true
	}

	// First round: evaluate every rule on the current db.
	delta := rel.NewInstance()
	for _, ri := range ruleIdx {
		r := p.Rules[ri]
		res := cq.Evaluate(r, db)
		res.Each(func(t rel.Tuple) bool {
			f := rel.Fact{Rel: r.Head.Rel, Tuple: t}
			if !db.Contains(f) {
				delta.Add(f)
			}
			return true
		})
	}
	db.AddAll(delta)

	// Semi-naive rounds: re-evaluate each rule once per recursive body
	// atom, with that atom restricted to the delta. The view is built
	// once per round (db is only mutated after the round) and the Δ
	// binding is an alias of the delta relation, not a copy — rebinding
	// per atom costs one map write.
	const deltaRel = "Δ"
	for !delta.IsEmpty() {
		// The round can at best multiply the frontier; seed the head
		// relations with the previous delta's size so early rounds don't
		// rehash their way up from nothing.
		next := rel.NewInstanceSize(len(ruleIdx))
		for _, ri := range ruleIdx {
			h := p.Rules[ri].Head
			next.EnsureRelationSize(h.Rel, len(h.Args), delta.Len())
		}
		view := shallowView(db)
		for _, ri := range ruleIdx {
			r := p.Rules[ri]
			for bi, a := range r.Body {
				if !defined[a.Rel] {
					continue
				}
				dRel := delta.Relation(a.Rel)
				if dRel == nil || dRel.Len() == 0 {
					continue
				}
				view.SetRelationAs(deltaRel, dRel)
				rr := rewriteAtom(r, bi, deltaRel)
				res := cq.Evaluate(rr, view)
				res.Each(func(t rel.Tuple) bool {
					f := rel.Fact{Rel: r.Head.Rel, Tuple: t}
					if !db.Contains(f) && !next.Contains(f) {
						next.Add(f)
					}
					return true
				})
			}
		}
		db.AddAll(next)
		delta = next
	}
	return nil
}

// shallowView clones the relation map of db without copying tuples, so
// a view can rebind one relation cheaply. The view must not be
// mutated through Add on shared relations; evalStratum only reads it.
func shallowView(db *rel.Instance) *rel.Instance {
	out := rel.NewInstance()
	for _, name := range db.RelationNames() {
		out.SetRelation(db.Relation(name))
	}
	return out
}

// rewriteAtom returns a copy of r with body atom bi renamed to newRel.
func rewriteAtom(r *Rule, bi int, newRel string) *Rule {
	out := r.Clone()
	out.Body[bi].Rel = newRel
	return out
}
