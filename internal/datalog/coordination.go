package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// Coordination analysis in the spirit of Blazes (Alvaro, Conway,
// Hellerstein, Maier — cited in Section 6 of the paper): analyse a
// stratified program and report exactly where coordination is needed.
// Monotone strata can stream coordination-free (CALM); a stratum needs
// a barrier only before consuming a negated IDB relation, because it
// must know the lower stratum has sealed. Naively inserting a barrier
// between every pair of strata "overuses" coordination; this analysis
// identifies the minimal barrier set.

// Barrier describes one required synchronization point: the consuming
// stratum must wait for the producing relation to be sealed.
type Barrier struct {
	BeforeStratum int      // the stratum that must wait
	OnRelations   []string // the negated IDB relations it waits for
}

func (b Barrier) String() string {
	return fmt.Sprintf("stratum %d waits on sealed {%s}", b.BeforeStratum, strings.Join(b.OnRelations, ", "))
}

// CoordinationReport is the outcome of the analysis.
type CoordinationReport struct {
	Strata   int
	Barriers []Barrier // minimal barrier set
	// NaiveBarriers counts the inter-predicate dataflow edges
	// (IDB consumed by a rule of a different IDB head, positive or
	// negative, self-recursion excluded): the barriers an executor
	// places when it refuses to stream between collections at all.
	NaiveBarriers int
	// MonotoneStrata lists strata that can stream without any barrier
	// in front of them.
	MonotoneStrata []int
}

// Saved reports how many barriers the analysis removes versus the
// naive stratum-by-stratum execution.
func (r *CoordinationReport) Saved() int {
	return r.NaiveBarriers - len(r.Barriers)
}

// AnalyzeCoordination computes the minimal barrier set of a
// stratifiable program. A stratum s needs a barrier iff some of its
// rules negate an IDB relation (necessarily of a lower stratum);
// positive dependencies between strata can stream — new lower-stratum
// facts simply flow into the higher stratum's semi-naive loop, exactly
// the monotone regime of the CALM theorem.
func AnalyzeCoordination(p *Program) (*CoordinationReport, error) {
	st, err := Stratify(p)
	if err != nil {
		return nil, err
	}
	idb := p.IDB()
	rep := &CoordinationReport{Strata: st.Count}
	// Naive baseline: one barrier per IDB→IDB dataflow edge.
	naiveEdges := map[[2]string]bool{}
	for _, r := range p.Rules {
		for _, a := range r.Body {
			if idb[a.Rel] && a.Rel != r.Head.Rel {
				naiveEdges[[2]string{a.Rel, r.Head.Rel}] = true
			}
		}
		for _, a := range r.Neg {
			if idb[a.Rel] && a.Rel != r.Head.Rel {
				naiveEdges[[2]string{a.Rel, r.Head.Rel}] = true
			}
		}
	}
	rep.NaiveBarriers = len(naiveEdges)
	for s := 0; s < st.Count; s++ {
		waits := map[string]bool{}
		for _, ri := range st.RulesByStratum[s] {
			for _, a := range p.Rules[ri].Neg {
				if idb[a.Rel] {
					waits[a.Rel] = true
				}
			}
		}
		if len(waits) == 0 {
			rep.MonotoneStrata = append(rep.MonotoneStrata, s)
			continue
		}
		rels := make([]string, 0, len(waits))
		for r := range waits {
			rels = append(rels, r)
		}
		sort.Strings(rels)
		rep.Barriers = append(rep.Barriers, Barrier{BeforeStratum: s, OnRelations: rels})
	}
	return rep, nil
}
