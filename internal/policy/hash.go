package policy

import (
	"sort"

	"mpclogic/internal/rel"
)

// Hash routes each fact to a single node by hashing selected attribute
// positions per relation — the repartition strategy of Example 3.1(1a).
// Relations without a configured key are hashed on the whole tuple.
type Hash struct {
	Nodes int
	// Keys maps a relation name to the attribute positions to hash on.
	Keys map[string][]int
	// Seed perturbs the hash so independent rounds use independent
	// hash functions (h and h′ of Example 3.1(2)).
	Seed uint64
}

// NumNodes implements Policy.
func (p *Hash) NumNodes() int { return p.Nodes }

// target computes the single node for f.
func (p *Hash) target(f rel.Fact) Node {
	cols, ok := p.Keys[f.Rel]
	var t rel.Tuple
	if ok {
		t = f.Tuple.Project(cols)
	} else {
		t = f.Tuple
	}
	return Node((t.Hash() ^ p.Seed) % uint64(p.Nodes))
}

// NodesFor implements Policy.
func (p *Hash) NodesFor(f rel.Fact) []Node { return []Node{p.target(f)} }

// Responsible implements Policy.
func (p *Hash) Responsible(κ Node, f rel.Fact) bool { return p.target(f) == κ }

// Range implements a primary horizontal fragmentation: tuples of one
// relation are routed by comparing an attribute against thresholds
// (the "area code" example of Section 4.1). Facts of other relations
// are replicated everywhere, matching the common pattern of
// partitioning a fact table and replicating dimensions.
type Range struct {
	Nodes int
	Rel   string
	Col   int
	// Cuts holds ascending thresholds; node i is responsible for
	// values v with Cuts[i-1] ≤ v < Cuts[i] (node 0: v < Cuts[0],
	// last node: v ≥ Cuts[len-1]). len(Cuts) must be Nodes-1.
	Cuts []rel.Value
}

// NumNodes implements Policy.
func (p *Range) NumNodes() int { return p.Nodes }

func (p *Range) target(f rel.Fact) (Node, bool) {
	if f.Rel != p.Rel || p.Col >= len(f.Tuple) {
		return 0, false
	}
	v := f.Tuple[p.Col]
	i := sort.Search(len(p.Cuts), func(i int) bool { return v < p.Cuts[i] })
	return Node(i), true
}

// NodesFor implements Policy.
func (p *Range) NodesFor(f rel.Fact) []Node {
	if κ, ok := p.target(f); ok {
		return []Node{κ}
	}
	out := make([]Node, p.Nodes)
	for i := range out {
		out[i] = Node(i)
	}
	return out
}

// Responsible implements Policy.
func (p *Range) Responsible(κ Node, f rel.Fact) bool {
	if t, ok := p.target(f); ok {
		return t == κ
	}
	return int(κ) >= 0 && int(κ) < p.Nodes
}

// DomainGuided is the policy P_α induced by a domain assignment
// α: dom → 2^N (Section 5.2.2): every node in α(a) is responsible for
// every fact containing a. Values without an explicit assignment use
// a deterministic hash-based default of DefaultWidth nodes, so the
// assignment is total as the definition requires. Facts with no values
// (arity 0) are replicated everywhere.
type DomainGuided struct {
	Nodes int
	// Alpha maps a value to the nodes assigned to it.
	Alpha map[rel.Value][]Node
	// DefaultWidth is how many nodes an unassigned value maps to
	// (minimum 1).
	DefaultWidth int
	Seed         uint64
}

// NumNodes implements Policy.
func (p *DomainGuided) NumNodes() int { return p.Nodes }

// ValueNodes returns α(v).
func (p *DomainGuided) ValueNodes(v rel.Value) []Node {
	if ns, ok := p.Alpha[v]; ok {
		return ns
	}
	w := p.DefaultWidth
	if w < 1 {
		w = 1
	}
	if w > p.Nodes {
		w = p.Nodes
	}
	start := (rel.Tuple{v}).Hash() ^ p.Seed
	out := make([]Node, w)
	for i := 0; i < w; i++ {
		out[i] = Node((start + uint64(i)) % uint64(p.Nodes))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NodesFor implements Policy.
func (p *DomainGuided) NodesFor(f rel.Fact) []Node {
	if len(f.Tuple) == 0 {
		out := make([]Node, p.Nodes)
		for i := range out {
			out[i] = Node(i)
		}
		return out
	}
	set := map[Node]bool{}
	for _, v := range f.Tuple {
		for _, κ := range p.ValueNodes(v) {
			set[κ] = true
		}
	}
	out := make([]Node, 0, len(set))
	for κ := range set {
		out = append(out, κ)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Responsible implements Policy.
func (p *DomainGuided) Responsible(κ Node, f rel.Fact) bool {
	if len(f.Tuple) == 0 {
		return int(κ) >= 0 && int(κ) < p.Nodes
	}
	for _, v := range f.Tuple {
		for _, n := range p.ValueNodes(v) {
			if n == κ {
				return true
			}
		}
	}
	return false
}

// PerRelation dispatches to a different sub-policy per relation name —
// the common production pattern of partitioning fact tables while
// replicating dimension tables. Facts of unlisted relations use
// Default (or go nowhere if Default is nil).
type PerRelation struct {
	Nodes    int
	Policies map[string]Policy
	Default  Policy
}

// NumNodes implements Policy.
func (p *PerRelation) NumNodes() int { return p.Nodes }

func (p *PerRelation) sub(f rel.Fact) Policy {
	if s, ok := p.Policies[f.Rel]; ok {
		return s
	}
	return p.Default
}

// NodesFor implements Policy.
func (p *PerRelation) NodesFor(f rel.Fact) []Node {
	if s := p.sub(f); s != nil {
		return s.NodesFor(f)
	}
	return nil
}

// Responsible implements Policy.
func (p *PerRelation) Responsible(κ Node, f rel.Fact) bool {
	if s := p.sub(f); s != nil {
		return s.Responsible(κ, f)
	}
	return false
}

// Union composes policies by union of responsibility: a node is
// responsible for a fact when any member policy says so. Useful for
// layering a replication policy for hot facts over a base partition.
type Union struct {
	Members []Policy
}

// NumNodes implements Policy.
func (p *Union) NumNodes() int {
	max := 0
	for _, m := range p.Members {
		if m.NumNodes() > max {
			max = m.NumNodes()
		}
	}
	return max
}

// NodesFor implements Policy.
func (p *Union) NodesFor(f rel.Fact) []Node {
	set := map[Node]bool{}
	for _, m := range p.Members {
		for _, κ := range m.NodesFor(f) {
			set[κ] = true
		}
	}
	out := make([]Node, 0, len(set))
	for κ := range set {
		out = append(out, κ)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Responsible implements Policy.
func (p *Union) Responsible(κ Node, f rel.Fact) bool {
	for _, m := range p.Members {
		if m.Responsible(κ, f) {
			return true
		}
	}
	return false
}
