// Package policy implements distribution policies (Section 4.1 of
// Neven, PODS 2016): a policy P = (U, rfacts_P) over a network N maps
// every fact over the universe U to the set of nodes responsible for
// it. The paper's footnote 2 notes the two equivalent views — facts to
// nodes and nodes to fact sets; this package exposes both.
//
// Implementations cover the classes the paper discusses: explicitly
// enumerated finite policies (P_fin), hash-based repartitioning,
// primary horizontal fragmentations (range partitioning), HyperCube
// grids (Section 3.1), domain-guided policies induced by a domain
// assignment (Section 5.2.2), and full replication (the "ideal"
// distribution of the coordination-freeness proofs).
package policy

import (
	"fmt"
	"sort"

	"mpclogic/internal/rel"
)

// Node identifies a computing node; nodes of a p-node network are
// 0 … p−1.
type Node int

// Policy is a distribution policy. NodesFor must be deterministic.
type Policy interface {
	// NumNodes returns the size of the network.
	NumNodes() int
	// NodesFor returns the nodes responsible for f, in ascending order.
	NodesFor(f rel.Fact) []Node
	// Responsible reports whether node κ is responsible for f.
	Responsible(κ Node, f rel.Fact) bool
}

// Universed is implemented by policies that carry an explicit finite
// universe U (needed by the parallel-correctness decision procedures).
type Universed interface {
	Universe() []rel.Value
}

// LocalInstance returns loc-inst_{P,I}(κ): the facts of I for which κ
// is responsible.
func LocalInstance(p Policy, i *rel.Instance, κ Node) *rel.Instance {
	return i.Filter(func(f rel.Fact) bool { return p.Responsible(κ, f) })
}

// Distribute materializes the local instance of every node.
func Distribute(p Policy, i *rel.Instance) []*rel.Instance {
	out := make([]*rel.Instance, p.NumNodes())
	for k := range out {
		out[k] = rel.NewInstance()
	}
	i.Each(func(f rel.Fact) bool {
		for _, κ := range p.NodesFor(f) {
			out[κ].Add(f)
		}
		return true
	})
	return out
}

// MeetsAtSomeNode reports whether some node is responsible for every
// fact in facts — the "required facts meet" condition at the heart of
// (PC0) and (PC1).
func MeetsAtSomeNode(p Policy, facts []rel.Fact) bool {
	if len(facts) == 0 {
		return p.NumNodes() > 0
	}
	// Intersect candidate node sets, starting from the first fact.
	candidates := p.NodesFor(facts[0])
	for _, f := range facts[1:] {
		if len(candidates) == 0 {
			return false
		}
		next := candidates[:0:0]
		for _, κ := range candidates {
			if p.Responsible(κ, f) {
				next = append(next, κ)
			}
		}
		candidates = next
	}
	return len(candidates) > 0
}

// nodesFromResponsible derives NodesFor from a Responsible predicate.
func nodesFromResponsible(numNodes int, f rel.Fact, resp func(Node, rel.Fact) bool) []Node {
	var out []Node
	for κ := Node(0); int(κ) < numNodes; κ++ {
		if resp(κ, f) {
			out = append(out, κ)
		}
	}
	return out
}

// Finite is an explicitly enumerated policy — the class P_fin of
// Theorem 4.8. It carries its universe.
type Finite struct {
	nodes    int
	universe []rel.Value
	resp     map[string][]Node // fact key → sorted nodes
}

// NewFinite returns an empty finite policy over a network of n nodes
// and the given universe.
func NewFinite(n int, universe []rel.Value) *Finite {
	u := append([]rel.Value(nil), universe...)
	sort.Slice(u, func(i, j int) bool { return u[i] < u[j] })
	return &Finite{nodes: n, universe: u, resp: make(map[string][]Node)}
}

// Assign makes κ responsible for f. Assigning the same pair twice is a
// no-op.
func (p *Finite) Assign(κ Node, f rel.Fact) *Finite {
	if int(κ) < 0 || int(κ) >= p.nodes {
		panic(fmt.Sprintf("policy: node %d out of range [0,%d)", κ, p.nodes))
	}
	k := f.Key()
	ns := p.resp[k]
	pos := sort.Search(len(ns), func(i int) bool { return ns[i] >= κ })
	if pos < len(ns) && ns[pos] == κ {
		return p
	}
	ns = append(ns, 0)
	copy(ns[pos+1:], ns[pos:])
	ns[pos] = κ
	p.resp[k] = ns
	return p
}

// AssignAll makes κ responsible for every fact in facts.
func (p *Finite) AssignAll(κ Node, facts ...rel.Fact) *Finite {
	for _, f := range facts {
		p.Assign(κ, f)
	}
	return p
}

// NumNodes implements Policy.
func (p *Finite) NumNodes() int { return p.nodes }

// NodesFor implements Policy.
func (p *Finite) NodesFor(f rel.Fact) []Node { return p.resp[f.Key()] }

// Responsible implements Policy.
func (p *Finite) Responsible(κ Node, f rel.Fact) bool {
	ns := p.resp[f.Key()]
	pos := sort.Search(len(ns), func(i int) bool { return ns[i] >= κ })
	return pos < len(ns) && ns[pos] == κ
}

// Universe implements Universed.
func (p *Finite) Universe() []rel.Value { return p.universe }

// Func adapts an arbitrary responsibility predicate into a Policy —
// the fully general "any mapping from facts to subsets of servers" of
// Section 4.1.
type Func struct {
	Nodes int
	Resp  func(Node, rel.Fact) bool
	Univ  []rel.Value
}

// NumNodes implements Policy.
func (p *Func) NumNodes() int { return p.Nodes }

// NodesFor implements Policy.
func (p *Func) NodesFor(f rel.Fact) []Node {
	return nodesFromResponsible(p.Nodes, f, p.Resp)
}

// Responsible implements Policy.
func (p *Func) Responsible(κ Node, f rel.Fact) bool { return p.Resp(κ, f) }

// Universe implements Universed.
func (p *Func) Universe() []rel.Value { return p.Univ }

// Replicate sends every fact to every node — the ideal distribution
// used in the proofs of Theorems 5.3/5.8/5.12.
type Replicate struct {
	Nodes int
}

// NumNodes implements Policy.
func (p *Replicate) NumNodes() int { return p.Nodes }

// NodesFor implements Policy.
func (p *Replicate) NodesFor(rel.Fact) []Node {
	out := make([]Node, p.Nodes)
	for i := range out {
		out[i] = Node(i)
	}
	return out
}

// Responsible implements Policy.
func (p *Replicate) Responsible(κ Node, _ rel.Fact) bool {
	return int(κ) >= 0 && int(κ) < p.Nodes
}
