package policy

import (
	"bytes"
	"strings"
	"testing"

	"mpclogic/internal/rel"
)

func storeSample() *StableStore {
	a := rel.NewInstance()
	a.Add(rel.NewFact("R", 1, 2))
	a.Add(rel.NewFact("S", 3))
	b := rel.NewInstance() // one empty fragment, a real shape after skewed placement
	c := rel.NewInstance()
	c.Add(rel.NewFact("R", -5, 9))
	return NewStableStore([]*rel.Instance{a, b, c})
}

// TestStoreEncodeRoundTrip: a decoded store must reload fragment-equal
// instances, and re-encoding must reproduce the identical bytes — the
// property that makes the file format double as the wire format.
func TestStoreEncodeRoundTrip(t *testing.T) {
	s := storeSample()
	var buf bytes.Buffer
	if err := EncodeStore(&buf, s); err != nil {
		t.Fatalf("encode: %v", err)
	}
	first := append([]byte(nil), buf.Bytes()...)
	got, err := DecodeStore(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.NumNodes() != s.NumNodes() || got.TotalFacts() != s.TotalFacts() {
		t.Fatalf("decoded store shape %d nodes/%d facts, want %d/%d",
			got.NumNodes(), got.TotalFacts(), s.NumNodes(), s.TotalFacts())
	}
	for κ := 0; κ < s.NumNodes(); κ++ {
		if !got.Reload(Node(κ)).Equal(s.Reload(Node(κ))) {
			t.Errorf("node %d fragment changed across the round-trip", κ)
		}
	}
	var again bytes.Buffer
	if err := EncodeStore(&again, got); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(first, again.Bytes()) {
		t.Fatal("encode→decode→encode is not a fixpoint")
	}
}

// TestStoreDecodeSnapshotIsolation: mutating a reloaded fragment must
// not leak into the decoded store (Reload clones, like the in-memory
// store).
func TestStoreDecodeSnapshotIsolation(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeStore(&buf, storeSample()); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got.Reload(0).Add(rel.NewFact("R", 99, 99))
	if got.Reload(0).Contains(rel.NewFact("R", 99, 99)) {
		t.Fatal("mutating a reloaded fragment leaked into the store")
	}
}

// TestStoreDecodeRejects: damaged checkpoint files fail with errors,
// never panics, and name what went wrong.
func TestStoreDecodeRejects(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeStore(&buf, storeSample()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	cases := []struct {
		name    string
		data    []byte
		wantErr string
	}{
		{"empty", nil, "header"},
		{"bad magic", append([]byte{9, 9, 9, 9}, good[4:]...), "magic"},
		{"bad version", append(append(append([]byte(nil), good[:4]...), 0xff, 0xff), good[6:]...), "version"},
		{"truncated mid-fragment", good[:len(good)-6], "fragment"},
		{"truncated mid-checksum", good[:len(good)-2], "checksum"},
		{"checksum mismatch", append(append([]byte(nil), good[:len(good)-1]...), good[len(good)-1]^1), "checksum mismatch"},
		{"trailing", append(append([]byte(nil), good...), 1), "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeStore(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("decoder accepted a damaged store")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
