package policy

import (
	"math/rand"
	"testing"

	"mpclogic/internal/rel"
)

func TestFinitePolicy(t *testing.T) {
	d := rel.NewDict()
	f1 := rel.MustFact(d, "R(a,b)")
	f2 := rel.MustFact(d, "S(a)")
	p := NewFinite(3, d.Values("a", "b"))
	p.Assign(2, f1).Assign(0, f1).Assign(1, f2).Assign(0, f1) // dup no-op

	if got := p.NodesFor(f1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("NodesFor(f1) = %v", got)
	}
	if !p.Responsible(0, f1) || p.Responsible(1, f1) || !p.Responsible(1, f2) {
		t.Errorf("Responsible wrong")
	}
	if len(p.NodesFor(rel.MustFact(d, "T(a)"))) != 0 {
		t.Errorf("unassigned fact has nodes")
	}
	if got := p.Universe(); len(got) != 2 {
		t.Errorf("Universe = %v", got)
	}
}

func TestFinitePolicyPanicsOutOfRange(t *testing.T) {
	d := rel.NewDict()
	p := NewFinite(2, nil)
	defer func() {
		if recover() == nil {
			t.Errorf("out-of-range Assign did not panic")
		}
	}()
	p.Assign(5, rel.MustFact(d, "R(a)"))
}

func TestLocalInstanceAndDistribute(t *testing.T) {
	d := rel.NewDict()
	i := rel.MustInstance(d, "R(a,b)", "R(b,a)", "S(a)")
	p := NewFinite(2, d.Values("a", "b"))
	p.Assign(0, rel.MustFact(d, "R(a,b)"))
	p.Assign(0, rel.MustFact(d, "S(a)"))
	p.Assign(1, rel.MustFact(d, "R(b,a)"))
	p.Assign(1, rel.MustFact(d, "R(a,b)"))

	loc0 := LocalInstance(p, i, 0)
	if loc0.Len() != 2 || !loc0.Contains(rel.MustFact(d, "S(a)")) {
		t.Errorf("loc0 = %v", loc0.StringWith(d))
	}
	parts := Distribute(p, i)
	if len(parts) != 2 || !parts[0].Equal(loc0) {
		t.Errorf("Distribute disagrees with LocalInstance")
	}
	if parts[1].Len() != 2 {
		t.Errorf("loc1 = %v", parts[1].StringWith(d))
	}
}

func TestMeetsAtSomeNode(t *testing.T) {
	d := rel.NewDict()
	f1 := rel.MustFact(d, "R(a,b)")
	f2 := rel.MustFact(d, "R(b,a)")
	p := NewFinite(2, nil)
	// f1 on both nodes, f2 only on node 1.
	p.Assign(0, f1).Assign(1, f1).Assign(1, f2)
	if !MeetsAtSomeNode(p, []rel.Fact{f1, f2}) {
		t.Errorf("facts meet at node 1 but not detected")
	}
	f3 := rel.MustFact(d, "S(a)")
	p.Assign(0, f3)
	if MeetsAtSomeNode(p, []rel.Fact{f2, f3}) {
		t.Errorf("non-meeting facts reported as meeting")
	}
	if !MeetsAtSomeNode(p, nil) {
		t.Errorf("empty fact set should meet on nonempty network")
	}
}

func TestReplicate(t *testing.T) {
	d := rel.NewDict()
	p := &Replicate{Nodes: 4}
	f := rel.MustFact(d, "R(a)")
	if got := p.NodesFor(f); len(got) != 4 {
		t.Errorf("NodesFor = %v", got)
	}
	for κ := Node(0); κ < 4; κ++ {
		if !p.Responsible(κ, f) {
			t.Errorf("node %d not responsible", κ)
		}
	}
	if p.Responsible(4, f) || p.Responsible(-1, f) {
		t.Errorf("out-of-range node responsible")
	}
}

func TestHashPolicySingleTargetConsistent(t *testing.T) {
	p := &Hash{Nodes: 5, Keys: map[string][]int{"R": {1}, "S": {0}}}
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		f := rel.NewFact("R", rel.Value(r.Intn(100)), rel.Value(r.Intn(100)))
		ns := p.NodesFor(f)
		if len(ns) != 1 {
			t.Fatalf("hash policy fanout %d", len(ns))
		}
		if !p.Responsible(ns[0], f) {
			t.Fatalf("Responsible disagrees with NodesFor")
		}
	}
	// Join-key collocation: R(·, v) and S(v, ·) land together.
	for v := rel.Value(0); v < 50; v++ {
		rf := rel.NewFact("R", 999, v)
		sf := rel.NewFact("S", v, 888)
		if p.NodesFor(rf)[0] != p.NodesFor(sf)[0] {
			t.Fatalf("join keys not collocated for v=%d", v)
		}
	}
	// Unkeyed relation hashes whole tuple, deterministically.
	f := rel.NewFact("T", 1, 2)
	if p.NodesFor(f)[0] != p.NodesFor(f)[0] {
		t.Errorf("nondeterministic hash")
	}
	// Different seeds give (usually) different placements.
	p2 := &Hash{Nodes: 5, Keys: p.Keys, Seed: 0xdeadbeef}
	diff := 0
	for v := rel.Value(0); v < 100; v++ {
		if p.NodesFor(rel.NewFact("R", 0, v))[0] != p2.NodesFor(rel.NewFact("R", 0, v))[0] {
			diff++
		}
	}
	if diff == 0 {
		t.Errorf("seed has no effect")
	}
}

func TestRangePolicy(t *testing.T) {
	p := &Range{Nodes: 3, Rel: "Customer", Col: 1, Cuts: []rel.Value{100, 200}}
	cases := []struct {
		v    rel.Value
		want Node
	}{{0, 0}, {99, 0}, {100, 1}, {199, 1}, {200, 2}, {5000, 2}}
	for _, c := range cases {
		f := rel.NewFact("Customer", 7, c.v)
		ns := p.NodesFor(f)
		if len(ns) != 1 || ns[0] != c.want {
			t.Errorf("value %d → %v, want node %d", c.v, ns, c.want)
		}
	}
	// Other relations are replicated.
	other := rel.NewFact("Nation", 1)
	if got := p.NodesFor(other); len(got) != 3 {
		t.Errorf("dimension fact fanout = %d", len(got))
	}
}

func TestDomainGuided(t *testing.T) {
	p := &DomainGuided{
		Nodes: 4,
		Alpha: map[rel.Value][]Node{
			1: {0},
			2: {1, 2},
		},
		DefaultWidth: 1,
	}
	f := rel.NewFact("E", 1, 2)
	ns := p.NodesFor(f)
	// α(1) ∪ α(2) = {0, 1, 2}.
	if len(ns) != 3 || ns[0] != 0 || ns[1] != 1 || ns[2] != 2 {
		t.Errorf("NodesFor = %v", ns)
	}
	for _, κ := range ns {
		if !p.Responsible(κ, f) {
			t.Errorf("node %d not responsible", κ)
		}
	}
	if p.Responsible(3, f) {
		t.Errorf("node 3 responsible but not in α-union")
	}
	// Unassigned values get a deterministic default.
	g := rel.NewFact("E", 77, 77)
	if len(p.NodesFor(g)) != 1 {
		t.Errorf("default width violated: %v", p.NodesFor(g))
	}
	// Key property of domain-guided policies: some node holds ALL facts
	// containing a given value a — here α is single-valued per value,
	// so every fact containing 1 includes node 0.
	if !p.Responsible(0, rel.NewFact("E", 1, 99)) {
		t.Errorf("node 0 lost a fact containing value 1")
	}
	// Nullary facts are replicated.
	if got := p.NodesFor(rel.NewFact("B")); len(got) != 4 {
		t.Errorf("nullary fanout = %d", len(got))
	}
}

func TestFuncPolicy(t *testing.T) {
	d := rel.NewDict()
	// Example 4.3's policy: every fact except R(a,b) on node 0, every
	// fact except R(b,a) on node 1.
	ab := rel.MustFact(d, "R(a,b)")
	ba := rel.MustFact(d, "R(b,a)")
	p := &Func{
		Nodes: 2,
		Resp: func(κ Node, f rel.Fact) bool {
			switch κ {
			case 0:
				return !f.Equal(ab)
			case 1:
				return !f.Equal(ba)
			}
			return false
		},
		Univ: d.Values("a", "b"),
	}
	if p.Responsible(0, ab) || !p.Responsible(1, ab) {
		t.Errorf("R(a,b) placement wrong")
	}
	if got := p.NodesFor(rel.MustFact(d, "R(a,a)")); len(got) != 2 {
		t.Errorf("R(a,a) fanout = %v", got)
	}
	if got := p.Universe(); len(got) != 2 {
		t.Errorf("universe = %v", got)
	}
}

func TestPerRelationPolicy(t *testing.T) {
	d := rel.NewDict()
	p := &PerRelation{
		Nodes: 4,
		Policies: map[string]Policy{
			"Fact": &Hash{Nodes: 4},
			"Dim":  &Replicate{Nodes: 4},
		},
	}
	ff := rel.MustFact(d, "Fact(a,b)")
	df := rel.MustFact(d, "Dim(x)")
	if got := len(p.NodesFor(ff)); got != 1 {
		t.Errorf("fact-table fanout = %d", got)
	}
	if got := len(p.NodesFor(df)); got != 4 {
		t.Errorf("dimension fanout = %d", got)
	}
	if got := p.NodesFor(rel.MustFact(d, "Other(z)")); got != nil {
		t.Errorf("unlisted relation routed: %v", got)
	}
	p.Default = &Replicate{Nodes: 4}
	if got := len(p.NodesFor(rel.MustFact(d, "Other(z)"))); got != 4 {
		t.Errorf("default not applied: %d", got)
	}
}

func TestUnionPolicy(t *testing.T) {
	d := rel.NewDict()
	base := &Hash{Nodes: 4}
	hot := rel.MustFact(d, "R(a,b)")
	overlay := NewFinite(4, nil)
	for κ := Node(0); κ < 4; κ++ {
		overlay.Assign(κ, hot)
	}
	u := &Union{Members: []Policy{base, overlay}}
	if u.NumNodes() != 4 {
		t.Errorf("NumNodes = %d", u.NumNodes())
	}
	if got := len(u.NodesFor(hot)); got != 4 {
		t.Errorf("hot fact fanout = %d, want 4 (replicated overlay)", got)
	}
	cold := rel.MustFact(d, "R(c,e)")
	if got := len(u.NodesFor(cold)); got != 1 {
		t.Errorf("cold fact fanout = %d, want 1 (base hash)", got)
	}
	for _, κ := range u.NodesFor(cold) {
		if !u.Responsible(κ, cold) {
			t.Errorf("Responsible disagrees with NodesFor")
		}
	}
}
