package policy

import (
	"bytes"
	"testing"

	"mpclogic/internal/rel"
)

// buildFuzzStore interprets script as a construction program over a
// small store: each 3-byte step adds a fact to one of up to four node
// partitions, so images regularly mix empty and populated fragments.
func buildFuzzStore(script []byte) *StableStore {
	parts := make([]*rel.Instance, 4)
	for i := range parts {
		parts[i] = rel.NewInstance()
	}
	names := []string{"R", "S", "ΔE"}
	for i := 0; i+2 < len(script); i += 3 {
		op, a, b := script[i], script[i+1], script[i+2]
		name := names[int(op>>2)%len(names)]
		parts[int(op)%len(parts)].Add(rel.NewFact(name, rel.Value(a%13), rel.Value(b%13)))
	}
	return NewStableStore(parts)
}

// FuzzStoreImage drives the checkpoint codec from both directions:
// the input bytes build a random store whose image must round-trip to
// the identical bytes, and the same input fed straight to the decoder
// must be rejected with an error — never a panic. Every single-bit
// mutation of a valid image must be rejected too, structurally or by
// the trailing CRC-32C: a damaged checkpoint file must never load as
// a plausible-but-wrong store.
func FuzzStoreImage(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 5, 3, 4, 9, 7, 1})
	var seed bytes.Buffer
	if err := EncodeStore(&seed, storeSample()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add(seed.Bytes()[:seed.Len()-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		// Direction 1: random store → image and back, a byte fixpoint.
		s := buildFuzzStore(data)
		var buf bytes.Buffer
		if err := EncodeStore(&buf, s); err != nil {
			t.Fatalf("encode: %v", err)
		}
		img := append([]byte(nil), buf.Bytes()...)
		got, err := DecodeStore(&buf)
		if err != nil {
			t.Fatalf("decoder rejected a fresh image: %v", err)
		}
		var again bytes.Buffer
		if err := EncodeStore(&again, got); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(img, again.Bytes()) {
			t.Fatal("encode→decode→encode is not a fixpoint")
		}

		// Direction 2: arbitrary bytes as an image — errors, not panics;
		// anything accepted must re-encode identically.
		if dec, err := DecodeStore(bytes.NewReader(data)); err == nil {
			var re bytes.Buffer
			if err := EncodeStore(&re, dec); err != nil {
				t.Fatalf("re-encoding an accepted image: %v", err)
			}
			if !bytes.Equal(re.Bytes(), data) {
				t.Fatalf("decoder accepted non-canonical bytes:\n  in %x\n out %x", data, re.Bytes())
			}
		}

		// Direction 3: every single-bit mutation of the valid image is
		// rejected. Large images sample bit positions at a fixed stride.
		stride := 1
		if nbits := len(img) * 8; nbits > 2048 {
			stride = nbits / 2048
		}
		for bitpos := 0; bitpos < len(img)*8; bitpos += stride {
			mut := append([]byte(nil), img...)
			mut[bitpos/8] ^= 1 << (bitpos % 8)
			if _, err := DecodeStore(bytes.NewReader(mut)); err == nil {
				t.Fatalf("decoder accepted a corrupted image (bit %d)", bitpos)
			}
		}
	})
}
