package policy

import (
	"encoding/binary"
	"fmt"
	"io"

	"mpclogic/internal/rel"
)

// Durable encoding for StableStore: the same canonical fragment format
// the MPC transports ship (rel.EncodeInstance), framed per node with a
// length prefix. One encoding serves both spill (a store written to
// disk survives the process, which is what lets a killed worker
// process recover its partition) and the wire (a store streamed to a
// peer is byte-identical to the file).
//
// Format (integers little-endian):
//
//	store := magic u32 | version u16 | nodes u32
//	       | nodes × (fragLen u32 | fragment bytes)
//
// where each fragment is a canonical rel instance encoding. Decoding
// is strict — bad magic/version, truncation, oversized prefixes, and
// trailing bytes are errors, never panics — because checkpoint files
// outlive the process that wrote them and may arrive damaged.

const (
	storeMagic uint32 = 0x53504d43 // "CMPS" little-endian
	// StoreVersion is the checkpoint format version; bump on layout
	// changes so stale files fail loudly instead of misparsing.
	StoreVersion uint16 = 1
)

// EncodeStore writes the store's durable fragments to w.
func EncodeStore(w io.Writer, s *StableStore) error {
	var hdr [10]byte
	binary.LittleEndian.PutUint32(hdr[0:], storeMagic)
	binary.LittleEndian.PutUint16(hdr[4:], StoreVersion)
	binary.LittleEndian.PutUint32(hdr[6:], uint32(len(s.parts)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("policy: encoding store header: %w", err)
	}
	for κ, part := range s.parts {
		frag := rel.EncodeInstance(part)
		var pre [4]byte
		binary.LittleEndian.PutUint32(pre[:], uint32(len(frag)))
		if _, err := w.Write(pre[:]); err != nil {
			return fmt.Errorf("policy: encoding node %d length: %w", κ, err)
		}
		if _, err := w.Write(frag); err != nil {
			return fmt.Errorf("policy: encoding node %d fragment: %w", κ, err)
		}
	}
	return nil
}

// DecodeStore reads a store written by EncodeStore. It consumes
// exactly the encoded bytes and verifies r is exhausted, so a
// truncated or padded checkpoint file is an error.
func DecodeStore(r io.Reader) (*StableStore, error) {
	var hdr [10]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("policy: reading store header: %w", err)
	}
	if magic := binary.LittleEndian.Uint32(hdr[0:]); magic != storeMagic {
		return nil, fmt.Errorf("policy: bad store magic %#x (want %#x)", magic, storeMagic)
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != StoreVersion {
		return nil, fmt.Errorf("policy: unsupported store version %d (this decoder speaks %d)", v, StoreVersion)
	}
	nodes := binary.LittleEndian.Uint32(hdr[6:])
	const maxNodes = 1 << 20 // sanity cap far above any real cluster
	if nodes > maxNodes {
		return nil, fmt.Errorf("policy: store declares %d nodes (cap %d)", nodes, maxNodes)
	}
	s := &StableStore{parts: make([]*rel.Instance, 0, nodes)}
	for κ := uint32(0); κ < nodes; κ++ {
		var pre [4]byte
		if _, err := io.ReadFull(r, pre[:]); err != nil {
			return nil, fmt.Errorf("policy: reading node %d length: %w", κ, err)
		}
		fragLen := binary.LittleEndian.Uint32(pre[:])
		const maxFrag = 1 << 30
		if fragLen > maxFrag {
			return nil, fmt.Errorf("policy: node %d fragment declares %d bytes (cap %d)", κ, fragLen, maxFrag)
		}
		frag := make([]byte, fragLen)
		if _, err := io.ReadFull(r, frag); err != nil {
			return nil, fmt.Errorf("policy: reading node %d fragment: %w", κ, err)
		}
		inst, err := rel.DecodeInstance(frag)
		if err != nil {
			return nil, fmt.Errorf("policy: node %d fragment: %w", κ, err)
		}
		s.parts = append(s.parts, inst)
	}
	var extra [1]byte
	switch n, err := r.Read(extra[:]); {
	case n != 0:
		return nil, fmt.Errorf("policy: trailing bytes after a complete store")
	case err != io.EOF:
		return nil, fmt.Errorf("policy: checking for trailing bytes: %w", err)
	}
	return s, nil
}
