package policy

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"mpclogic/internal/rel"
)

// Durable encoding for StableStore: the same canonical fragment format
// the MPC transports ship (rel.EncodeInstance), framed per node with a
// length prefix. One encoding serves both spill (a store written to
// disk survives the process, which is what lets a killed worker
// process recover its partition) and the wire (a store streamed to a
// peer is byte-identical to the file).
//
// Format (integers little-endian):
//
//	store := magic u32 | version u16 | nodes u32
//	       | nodes × (fragLen u32 | fragment bytes)
//	       | crc u32
//
// where each fragment is a canonical rel instance encoding and the
// trailing crc is CRC-32C over every preceding byte, computed
// incrementally as the store streams — neither encoder nor decoder
// buffers the image. Decoding is strict — bad magic/version,
// truncation, oversized prefixes, trailing bytes, and checksum
// mismatches are errors, never panics — because checkpoint files
// outlive the process that wrote them and may arrive damaged.

const (
	storeMagic uint32 = 0x53504d43 // "CMPS" little-endian
	// StoreVersion is the checkpoint format version; bump on layout
	// changes so stale files fail loudly instead of misparsing.
	// Version 2 added the trailing CRC-32C checksum.
	StoreVersion uint16 = 2
)

// storeCRCTable is the Castagnoli polynomial table shared by encoder
// and decoder.
var storeCRCTable = crc32.MakeTable(crc32.Castagnoli)

// EncodeStore writes the store's durable fragments to w, followed by a
// CRC-32C of everything written.
func EncodeStore(w io.Writer, s *StableStore) error {
	digest := crc32.New(storeCRCTable)
	mw := io.MultiWriter(w, digest)
	var hdr [10]byte
	binary.LittleEndian.PutUint32(hdr[0:], storeMagic)
	binary.LittleEndian.PutUint16(hdr[4:], StoreVersion)
	binary.LittleEndian.PutUint32(hdr[6:], uint32(len(s.parts)))
	if _, err := mw.Write(hdr[:]); err != nil {
		return fmt.Errorf("policy: encoding store header: %w", err)
	}
	for κ, part := range s.parts {
		frag := rel.EncodeInstance(part)
		var pre [4]byte
		binary.LittleEndian.PutUint32(pre[:], uint32(len(frag)))
		if _, err := mw.Write(pre[:]); err != nil {
			return fmt.Errorf("policy: encoding node %d length: %w", κ, err)
		}
		if _, err := mw.Write(frag); err != nil {
			return fmt.Errorf("policy: encoding node %d fragment: %w", κ, err)
		}
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], digest.Sum32())
	if _, err := w.Write(tail[:]); err != nil {
		return fmt.Errorf("policy: encoding store checksum: %w", err)
	}
	return nil
}

// DecodeStore reads a store written by EncodeStore. It consumes
// exactly the encoded bytes, verifies the trailing checksum over
// everything before it, and verifies r is exhausted, so a truncated,
// corrupted, or padded checkpoint file is an error.
func DecodeStore(r io.Reader) (*StableStore, error) {
	digest := crc32.New(storeCRCTable)
	tr := io.TeeReader(r, digest)
	var hdr [10]byte
	if _, err := io.ReadFull(tr, hdr[:]); err != nil {
		return nil, fmt.Errorf("policy: reading store header: %w", err)
	}
	if magic := binary.LittleEndian.Uint32(hdr[0:]); magic != storeMagic {
		return nil, fmt.Errorf("policy: bad store magic %#x (want %#x)", magic, storeMagic)
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != StoreVersion {
		return nil, fmt.Errorf("policy: unsupported store version %d (this decoder speaks %d)", v, StoreVersion)
	}
	nodes := binary.LittleEndian.Uint32(hdr[6:])
	const maxNodes = 1 << 20 // sanity cap far above any real cluster
	if nodes > maxNodes {
		return nil, fmt.Errorf("policy: store declares %d nodes (cap %d)", nodes, maxNodes)
	}
	s := &StableStore{parts: make([]*rel.Instance, 0, nodes)}
	for κ := uint32(0); κ < nodes; κ++ {
		var pre [4]byte
		if _, err := io.ReadFull(tr, pre[:]); err != nil {
			return nil, fmt.Errorf("policy: reading node %d length: %w", κ, err)
		}
		fragLen := binary.LittleEndian.Uint32(pre[:])
		const maxFrag = 1 << 30
		if fragLen > maxFrag {
			return nil, fmt.Errorf("policy: node %d fragment declares %d bytes (cap %d)", κ, fragLen, maxFrag)
		}
		frag := make([]byte, fragLen)
		if _, err := io.ReadFull(tr, frag); err != nil {
			return nil, fmt.Errorf("policy: reading node %d fragment: %w", κ, err)
		}
		inst, err := rel.DecodeInstance(frag)
		if err != nil {
			return nil, fmt.Errorf("policy: node %d fragment: %w", κ, err)
		}
		s.parts = append(s.parts, inst)
	}
	// The trailer is read from r directly: it is not part of the
	// digested image.
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, fmt.Errorf("policy: reading store checksum: %w", err)
	}
	if want, got := binary.LittleEndian.Uint32(tail[:]), digest.Sum32(); want != got {
		return nil, fmt.Errorf("policy: store checksum mismatch (trailer says %#x, body hashes to %#x)", want, got)
	}
	var extra [1]byte
	switch n, err := r.Read(extra[:]); {
	case n != 0:
		return nil, fmt.Errorf("policy: trailing bytes after a complete store")
	case err != io.EOF:
		return nil, fmt.Errorf("policy: checking for trailing bytes: %w", err)
	}
	return s, nil
}
