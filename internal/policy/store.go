package policy

import (
	"fmt"

	"mpclogic/internal/rel"
)

// StableStore models the durable half of a computing node's state:
// the horizontal fragment it was loaded with, which survives a crash
// and can be reloaded on restart. The transducer runtime's
// crash-restart fault injector reloads from here; everything else a
// node accumulated — received facts, protocol maps, auxiliary
// relations — is volatile and lost.
//
// The store snapshots the parts at construction time, so later
// mutation of a node's working state never leaks into what a restart
// recovers: reloads always reproduce the original distribution
// loc-inst(κ).
type StableStore struct {
	parts []*rel.Instance
}

// NewStableStore snapshots one durable fragment per node.
func NewStableStore(parts []*rel.Instance) *StableStore {
	s := &StableStore{parts: make([]*rel.Instance, len(parts))}
	for i, p := range parts {
		s.parts[i] = p.Clone()
	}
	return s
}

// StoreFromPolicy builds the stable store holding loc-inst_{P,I}(κ)
// for every node κ — the distribution a policy-loaded network can
// recover after a crash.
func StoreFromPolicy(p Policy, i *rel.Instance) *StableStore {
	return NewStableStore(Distribute(p, i))
}

// NumNodes returns the number of fragments held.
func (s *StableStore) NumNodes() int { return len(s.parts) }

// TotalFacts returns the total fact count over all fragments — the
// size of the store on the wire, which checkpoint replication charges
// per replica.
func (s *StableStore) TotalFacts() int {
	n := 0
	for _, p := range s.parts {
		n += p.Len()
	}
	return n
}

// Reload returns a fresh copy of node κ's durable fragment; mutating
// the returned instance never affects the store.
func (s *StableStore) Reload(κ Node) *rel.Instance {
	if int(κ) < 0 || int(κ) >= len(s.parts) {
		panic(fmt.Sprintf("policy: reload of node %d from a %d-node store", κ, len(s.parts)))
	}
	return s.parts[κ].Clone()
}
