package policy

import (
	"testing"

	"mpclogic/internal/rel"
)

// TotalFacts is the wire size checkpoint replication charges per
// replica; it must count every fragment, tolerate empty stores, and —
// because StableStore snapshots at construction — stay frozen while
// the source instances keep changing.
func TestStableStoreTotalFacts(t *testing.T) {
	if got := NewStableStore(nil).TotalFacts(); got != 0 {
		t.Errorf("empty store TotalFacts = %d, want 0", got)
	}
	if got := NewStableStore([]*rel.Instance{rel.NewInstance(), rel.NewInstance()}).TotalFacts(); got != 0 {
		t.Errorf("store of empty fragments TotalFacts = %d, want 0", got)
	}

	d := rel.NewDict()
	parts := []*rel.Instance{
		rel.MustInstance(d, "R(1, 2)", "R(2, 3)"),
		rel.NewInstance(),
		rel.MustInstance(d, "S(1)", "S(2)", "S(3)"),
	}
	s := NewStableStore(parts)
	if got := s.TotalFacts(); got != 5 {
		t.Errorf("TotalFacts = %d, want 5", got)
	}

	// Mutating a source fragment after construction must not move the
	// stored size or contents: the store is a snapshot, not a view.
	parts[0].Add(rel.NewFact("R", 9, 9))
	if got := s.TotalFacts(); got != 5 {
		t.Errorf("TotalFacts tracked source mutation: %d, want 5", got)
	}
	if s.Reload(0).Len() != 2 {
		t.Errorf("reload leaked a post-snapshot fact")
	}
}

func TestStableStoreReloadIsolation(t *testing.T) {
	d := rel.NewDict()
	s := NewStableStore([]*rel.Instance{rel.MustInstance(d, "R(1, 2)")})

	// Mutating a reloaded copy must not affect later reloads.
	first := s.Reload(0)
	first.Add(rel.NewFact("R", 7, 7))
	if got := s.Reload(0).Len(); got != 1 {
		t.Errorf("reload observed mutation of an earlier reload: len=%d, want 1", got)
	}
	if s.TotalFacts() != 1 {
		t.Errorf("TotalFacts moved after reload mutation")
	}
}

func TestStableStoreReloadBounds(t *testing.T) {
	s := NewStableStore([]*rel.Instance{rel.NewInstance()})
	for _, κ := range []Node{-1, 1} {
		κ := κ
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Reload(%d) on a 1-node store did not panic", κ)
				}
			}()
			s.Reload(κ)
		}()
	}
}

// StoreFromPolicy must capture exactly loc-inst(κ) for every node.
func TestStoreFromPolicyMatchesDistribute(t *testing.T) {
	d := rel.NewDict()
	inst := rel.MustInstance(d, "R(1, 2)", "R(2, 3)", "R(3, 4)", "S(1)", "S(4)")
	pol := &Hash{Nodes: 3}
	s := StoreFromPolicy(pol, inst)
	if s.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", s.NumNodes())
	}
	want := Distribute(pol, inst)
	total := 0
	for κ, frag := range want {
		if !s.Reload(Node(κ)).Equal(frag) {
			t.Errorf("node %d fragment diverges from loc-inst", κ)
		}
		total += frag.Len()
	}
	if s.TotalFacts() != total {
		t.Errorf("TotalFacts = %d, want %d", s.TotalFacts(), total)
	}
}
