package stream_test

import (
	"fmt"

	"mpclogic/internal/rel"
	"mpclogic/internal/stream"
)

// A streaming semijoin with one boolean flag of memory per key group:
// pass 1 detects the S-side, pass 2 emits the surviving R-tuples.
func ExampleSemiJoin() {
	d := rel.NewDict()
	inst := rel.MustInstance(d, "R(a,1)", "R(b,2)", "S(1)")
	n := &stream.Network{
		Machines:  2,
		Key:       stream.KeyOn(map[string][]int{"R": {1}, "S": {0}}),
		Automaton: stream.SemiJoin("R", "S"),
	}
	out, st, _ := n.Run(inst.Facts())
	fmt.Println(out.StringWith(d), "memory/group:", st.MemoryPerGroup)
	// Output: {R(a,1)} memory/group: 1
}
