// Package stream implements a simplified form of the distributed
// streaming model with finite memory of Neven, Schweikardt, Servais
// and Tan (ICDT 2015, cited in Section 3.2 of the survey): reducers
// are modelled as register automata — finite control, a fixed number
// of value registers and boolean flags — that scan their key-group a
// bounded number of passes and emit output facts. Grouping by join key
// is what makes finite memory sufficient: the fragment expressible
// this way is (a large part of) the semijoin algebra, exactly the
// paper's point, while full joins need per-group output proportional
// to the group size squared and fall outside the constant-register,
// constant-pass model.
package stream

import (
	"fmt"

	"mpclogic/internal/rel"
)

// State is the entire memory of a machine while processing one group:
// fixed-size register and flag banks. The runtime allocates it from
// the automaton's declared sizes, so a step function cannot smuggle
// unbounded state.
type State struct {
	Regs  []rel.Value
	Flags []bool
}

// Step processes one fact of the group during one pass and returns the
// facts to emit. It may mutate the fixed-size state only.
type Step func(pass int, st *State, f rel.Fact) []rel.Fact

// Automaton is a finite-memory group processor.
type Automaton struct {
	Name      string
	Registers int
	Flags     int
	Passes    int
	Step      Step
	// EndPass, if set, runs after each pass (emission on end-of-group
	// markers, e.g. for antijoin).
	EndPass func(pass int, st *State) []rel.Fact
}

// KeyFunc extracts the grouping key of a fact, or ok=false when the
// fact is not part of the stream this network processes.
type KeyFunc func(f rel.Fact) (rel.Tuple, bool)

// Network is a set of machines consuming a distributed stream: facts
// are routed to machines by key hash, grouped by exact key, and each
// group is processed independently by a fresh automaton state.
type Network struct {
	Machines  int
	Key       KeyFunc
	Automaton Automaton
}

// Stats reports the resource profile of a run — the quantities the
// finite-memory model is about.
type Stats struct {
	Groups       int
	LargestGroup int
	// MemoryPerGroup is the fixed register+flag footprint: the model's
	// claim is that this does not grow with the data.
	MemoryPerGroup int
	FactsProcessed int
}

// Run processes the stream. Facts are delivered in the given order
// (the stream order); within a machine, groups are independent.
func (n *Network) Run(streamOrder []rel.Fact) (*rel.Instance, *Stats, error) {
	if n.Machines <= 0 {
		return nil, nil, fmt.Errorf("stream: need at least one machine")
	}
	a := n.Automaton
	if a.Step == nil || a.Passes <= 0 {
		return nil, nil, fmt.Errorf("stream: automaton needs a step function and ≥1 pass")
	}
	// Route and group, preserving arrival order within each group
	// (the automaton must be correct for any order; tests shuffle).
	type group struct {
		key   rel.Tuple
		facts []rel.Fact
	}
	perMachine := make([]map[string]*group, n.Machines)
	for i := range perMachine {
		perMachine[i] = map[string]*group{}
	}
	st := &Stats{MemoryPerGroup: a.Registers + a.Flags}
	for _, f := range streamOrder {
		key, ok := n.Key(f)
		if !ok {
			continue
		}
		m := int(key.Hash() % uint64(n.Machines))
		g, exists := perMachine[m][key.Key()]
		if !exists {
			g = &group{key: key}
			perMachine[m][key.Key()] = g
			st.Groups++
		}
		g.facts = append(g.facts, f)
	}

	out := rel.NewInstance()
	for _, groups := range perMachine {
		for _, g := range groups {
			if len(g.facts) > st.LargestGroup {
				st.LargestGroup = len(g.facts)
			}
			state := &State{
				Regs:  make([]rel.Value, a.Registers),
				Flags: make([]bool, a.Flags),
			}
			for pass := 0; pass < a.Passes; pass++ {
				for _, f := range g.facts {
					st.FactsProcessed++
					for _, e := range a.Step(pass, state, f) {
						out.Add(e)
					}
				}
				if a.EndPass != nil {
					for _, e := range a.EndPass(pass, state) {
						out.Add(e)
					}
				}
			}
		}
	}
	return out, st, nil
}

// ——— The semijoin-algebra automata of the expressible fragment ———

// KeyOn routes facts of the listed relations by the given column per
// relation.
func KeyOn(cols map[string][]int) KeyFunc {
	return func(f rel.Fact) (rel.Tuple, bool) {
		c, ok := cols[f.Rel]
		if !ok {
			return nil, false
		}
		return f.Tuple.Project(c), true
	}
}

// SemiJoin builds the two-pass automaton computing left ⋉ right on the
// grouping key: pass 0 raises a flag if the group contains a
// right-fact; pass 1 emits the left-facts when the flag is up.
// One flag, zero registers — finite memory regardless of group size.
func SemiJoin(left, right string) Automaton {
	return Automaton{
		Name:  fmt.Sprintf("%s⋉%s", left, right),
		Flags: 1, Passes: 2,
		Step: func(pass int, st *State, f rel.Fact) []rel.Fact {
			switch pass {
			case 0:
				if f.Rel == right {
					st.Flags[0] = true
				}
			case 1:
				if f.Rel == left && st.Flags[0] {
					return []rel.Fact{f}
				}
			}
			return nil
		},
	}
}

// AntiJoin is the complementary automaton (left ▷ right).
func AntiJoin(left, right string) Automaton {
	a := SemiJoin(left, right)
	a.Name = fmt.Sprintf("%s▷%s", left, right)
	a.Step = func(pass int, st *State, f rel.Fact) []rel.Fact {
		switch pass {
		case 0:
			if f.Rel == right {
				st.Flags[0] = true
			}
		case 1:
			if f.Rel == left && !st.Flags[0] {
				return []rel.Fact{f}
			}
		}
		return nil
	}
	return a
}

// Select is the one-pass stateless automaton emitting the facts of rel
// r that satisfy pred — selections (and projections, via the emit
// shape) need neither registers nor flags.
func Select(r string, pred func(rel.Tuple) bool, emit func(rel.Tuple) rel.Fact) Automaton {
	return Automaton{
		Name: "σ" + r, Passes: 1,
		Step: func(_ int, _ *State, f rel.Fact) []rel.Fact {
			if f.Rel == r && pred(f.Tuple) {
				return []rel.Fact{emit(f.Tuple)}
			}
			return nil
		},
	}
}
