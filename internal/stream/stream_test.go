package stream

import (
	"math/rand"
	"testing"

	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

// shuffled returns the instance's facts in a random stream order.
func shuffled(i *rel.Instance, seed int64) []rel.Fact {
	fs := i.Facts()
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(fs), func(a, b int) { fs[a], fs[b] = fs[b], fs[a] })
	return fs
}

func TestStreamSemiJoin(t *testing.T) {
	d := rel.NewDict()
	inst := rel.MustInstance(d,
		"R(a,1)", "R(b,2)", "R(c,1)", "R(dd,3)",
		"S(1)", "S(3)",
	)
	want := rel.SemiJoin(inst.Relation("R"), inst.Relation("S"), []int{1}, []int{0})

	n := &Network{
		Machines:  3,
		Key:       KeyOn(map[string][]int{"R": {1}, "S": {0}}),
		Automaton: SemiJoin("R", "S"),
	}
	for seed := int64(0); seed < 8; seed++ {
		out, st, err := n.Run(shuffled(inst, seed))
		if err != nil {
			t.Fatal(err)
		}
		got := out.Relation("R")
		if got == nil || !got.Equal(want) {
			t.Fatalf("seed %d: semijoin wrong", seed)
		}
		if st.MemoryPerGroup != 1 {
			t.Errorf("memory per group = %d, want 1 flag", st.MemoryPerGroup)
		}
	}
}

func TestStreamAntiJoin(t *testing.T) {
	d := rel.NewDict()
	inst := rel.MustInstance(d, "R(a,1)", "R(b,2)", "S(1)")
	want := rel.AntiJoin(inst.Relation("R"), inst.Relation("S"), []int{1}, []int{0})
	n := &Network{
		Machines:  2,
		Key:       KeyOn(map[string][]int{"R": {1}, "S": {0}}),
		Automaton: AntiJoin("R", "S"),
	}
	for seed := int64(0); seed < 8; seed++ {
		out, _, err := n.Run(shuffled(inst, seed))
		if err != nil {
			t.Fatal(err)
		}
		got := out.Relation("R")
		if got == nil || !got.Equal(want) {
			t.Fatalf("seed %d: antijoin wrong: got %v", seed, out.StringWith(d))
		}
	}
}

func TestStreamSelect(t *testing.T) {
	d := rel.NewDict()
	inst := rel.MustInstance(d, "R(1,1)", "R(1,2)", "R(3,3)")
	n := &Network{
		Machines: 2,
		Key:      KeyOn(map[string][]int{"R": {0}}),
		Automaton: Select("R",
			func(t rel.Tuple) bool { return t[0] == t[1] },
			func(t rel.Tuple) rel.Fact { return rel.Fact{Rel: "Out", Tuple: rel.Tuple{t[0]}} }),
	}
	out, _, err := n.Run(inst.Facts())
	if err != nil {
		t.Fatal(err)
	}
	want := rel.MustInstance(d, "Out(1)", "Out(3)")
	if !out.Equal(want) {
		t.Errorf("select = %v want %v", out.StringWith(d), want.StringWith(d))
	}
}

// The finite-memory claim: group sizes grow with the data, the per-
// group memory footprint does not.
func TestStreamMemoryConstant(t *testing.T) {
	n := &Network{
		Machines:  4,
		Key:       KeyOn(map[string][]int{"R": {1}, "S": {0}}),
		Automaton: SemiJoin("R", "S"),
	}
	var mem []int
	for _, m := range []int{100, 1000, 10000} {
		inst := workload.JoinSkewed(m, 0.5) // heavy group grows with m
		out, st, err := n.Run(inst.Facts())
		if err != nil {
			t.Fatal(err)
		}
		want := rel.SemiJoin(inst.Relation("R"), inst.Relation("S"), []int{1}, []int{0})
		if !out.Relation("R").Equal(want) {
			t.Fatalf("m=%d: semijoin wrong", m)
		}
		if st.LargestGroup < m/2 {
			t.Fatalf("m=%d: expected a large heavy group, got %d", m, st.LargestGroup)
		}
		mem = append(mem, st.MemoryPerGroup)
	}
	if mem[0] != mem[1] || mem[1] != mem[2] {
		t.Errorf("memory grew with data: %v", mem)
	}
}

func TestStreamValidation(t *testing.T) {
	n := &Network{Machines: 0, Key: KeyOn(nil), Automaton: SemiJoin("R", "S")}
	if _, _, err := n.Run(nil); err == nil {
		t.Errorf("zero machines accepted")
	}
	n = &Network{Machines: 1, Key: KeyOn(nil), Automaton: Automaton{}}
	if _, _, err := n.Run(nil); err == nil {
		t.Errorf("empty automaton accepted")
	}
}

func TestStreamUnroutedFactsIgnored(t *testing.T) {
	d := rel.NewDict()
	inst := rel.MustInstance(d, "R(a,1)", "S(1)", "Noise(9)")
	n := &Network{
		Machines:  2,
		Key:       KeyOn(map[string][]int{"R": {1}, "S": {0}}),
		Automaton: SemiJoin("R", "S"),
	}
	out, st, err := n.Run(inst.Facts())
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Errorf("output = %v", out.StringWith(d))
	}
	// Noise was not processed: 2 routed facts × 2 passes.
	if st.FactsProcessed != 4 {
		t.Errorf("processed = %d, want 4", st.FactsProcessed)
	}
}
