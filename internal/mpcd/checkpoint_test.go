package mpcd

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// seedSessions primes a server with two sessions and a warm anchor in
// the first, returning the responses a resumed server must match.
func seedSessions(t *testing.T, url string) []QueryResponse {
	t.Helper()
	do(t, "POST", url+"/v1/sessions", createRequest{ID: "ck1", Facts: transferFacts(), Budget: 1 << 10})
	do(t, "POST", url+"/v1/sessions", createRequest{ID: "ck2", Generator: "cycle", N: 32})
	return []QueryResponse{
		query(t, url, "ck1", anchorQ),
		query(t, url, "ck2", "L(x, z) :- E(x, y), E(y, z)"),
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{})
	seedSessions(t, ts1.URL)

	statusBefore := make(map[string]string)
	for _, id := range []string{"ck1", "ck2"} {
		_, raw := do(t, "GET", ts1.URL+"/v1/sessions/"+id, nil)
		statusBefore[id] = string(raw)
	}

	if err := s1.SaveSnapshot(dir); err != nil {
		t.Fatalf("save: %v", err)
	}
	// The drained server rejects everything typed.
	status, raw := do(t, "POST", ts1.URL+"/v1/query", queryRequest{Session: "ck1", Query: anchorQ})
	if status != http.StatusServiceUnavailable || errCode(t, raw) != CodeDraining {
		t.Fatalf("post-snapshot query: %d %s", status, raw)
	}

	s2, err := LoadSnapshot(dir, Config{})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	// Session status survives byte-for-byte: ledger, counters, anchor.
	for id, want := range statusBefore {
		_, raw := do(t, "GET", ts2.URL+"/v1/sessions/"+id, nil)
		if string(raw) != want {
			t.Fatalf("session %s status drifted across restart:\n  before %s\n  after  %s", id, want, raw)
		}
	}
	if s2.Statz().RestoredSessions != 2 {
		t.Fatalf("statz: %+v", s2.Statz())
	}

	// The restored anchor is warm: a covered query reuses immediately,
	// with zero communication, on the restored fragments.
	qr := query(t, ts2.URL, "ck1", coveredQ3)
	if qr.Path != PathReused || qr.Comm != 0 {
		t.Fatalf("restored session lost its warm distribution: %+v", qr)
	}
}

// TestResumeByteIdentity is the kill-and-resume invariant in-process:
// snapshot mid-script, resume in a fresh server, and the remaining
// responses are byte-identical to an uninterrupted reference run.
func TestResumeByteIdentity(t *testing.T) {
	script := []string{coveredQ1, uncoveredQ, anchorQ, coveredQ2}

	// Reference: one server runs setup + script straight through.
	_, tsRef := newTestServer(t, Config{})
	seedSessions(t, tsRef.URL)
	var want []string
	for _, q := range script {
		_, raw := do(t, "POST", tsRef.URL+"/v1/query", queryRequest{Session: "ck1", Query: q})
		want = append(want, string(raw))
	}

	// Interrupted: setup, snapshot, restart, then the same script.
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{})
	seedSessions(t, ts1.URL)
	if err := s1.SaveSnapshot(dir); err != nil {
		t.Fatalf("save: %v", err)
	}
	s2, err := LoadSnapshot(dir, Config{})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	for i, q := range script {
		_, raw := do(t, "POST", ts2.URL+"/v1/query", queryRequest{Session: "ck1", Query: q})
		if string(raw) != want[i] {
			t.Fatalf("query %d (%q) diverged after resume:\n  want %s\n  got  %s", i, q, want[i], raw)
		}
	}
}

func TestCheckpointEndpoint(t *testing.T) {
	// Without a configured directory the endpoint refuses typed.
	_, tsNo := newTestServer(t, Config{})
	status, raw := do(t, "POST", tsNo.URL+"/v1/checkpoint", nil)
	if status != http.StatusConflict || errCode(t, raw) != CodeConflict {
		t.Fatalf("checkpoint without dir: %d %s", status, raw)
	}

	dir := t.TempDir()
	_, ts := newTestServer(t, Config{SnapshotDir: dir})
	seedSessions(t, ts.URL)
	status, raw = do(t, "POST", ts.URL+"/v1/checkpoint", nil)
	if status != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", status, raw)
	}
	var cr checkpointResponse
	if err := json.Unmarshal(raw, &cr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if cr.Dir != dir || cr.Sessions != 2 {
		t.Fatalf("checkpoint response %+v", cr)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Fatalf("manifest missing: %v", err)
	}
	if _, err := LoadSnapshot(dir, Config{}); err != nil {
		t.Fatalf("endpoint snapshot does not load: %v", err)
	}
}

func TestLoadSnapshotRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{})
	seedSessions(t, ts.URL)
	if err := s.SaveSnapshot(dir); err != nil {
		t.Fatalf("save: %v", err)
	}

	// Flip one byte in a fragment image: the CRC must catch it.
	storePath := filepath.Join(dir, "session-ck1.store")
	raw, err := os.ReadFile(storePath)
	if err != nil {
		t.Fatalf("read store: %v", err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(storePath, raw, 0o644); err != nil {
		t.Fatalf("corrupt store: %v", err)
	}
	if _, err := LoadSnapshot(dir, Config{}); err == nil {
		t.Fatal("LoadSnapshot accepted a corrupted fragment image")
	}

	// Missing manifest.
	if _, err := LoadSnapshot(t.TempDir(), Config{}); err == nil {
		t.Fatal("LoadSnapshot accepted an empty directory")
	}

	// Future manifest version.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, manifestName), []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatalf("write manifest: %v", err)
	}
	if _, err := LoadSnapshot(dir2, Config{}); err == nil {
		t.Fatal("LoadSnapshot accepted a future manifest version")
	}

	// Traversal in the manifest's store path stays inside the dir.
	dir3 := t.TempDir()
	m := `{"version": 1, "seed": 1, "sessions": [{"id": "x", "p": 8, "store": "../../etc/passwd"}]}`
	if err := os.WriteFile(filepath.Join(dir3, manifestName), []byte(m), 0o644); err != nil {
		t.Fatalf("write manifest: %v", err)
	}
	if _, err := LoadSnapshot(dir3, Config{}); err == nil {
		t.Fatal("LoadSnapshot followed a traversal store path")
	}
}
