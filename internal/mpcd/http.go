package mpcd

import (
	"encoding/json"
	"errors"
	"net/http"
)

// createRequest creates a session: data from a seeded workload
// generator, explicit symbolic facts, or both.
type createRequest struct {
	ID        string   `json:"id,omitempty"`        // client-chosen id; auto-assigned when empty
	P         int      `json:"p,omitempty"`         // cluster width; server default when 0
	Budget    int      `json:"budget,omitempty"`    // session communication budget; server default when 0
	Generator string   `json:"generator,omitempty"` // join | join-skewed | triangle | triangle-skewed | cycle | path | random-graph
	N         int      `json:"n,omitempty"`         // generator size
	M         int      `json:"m,omitempty"`         // edge count (random-graph)
	Skew      float64  `json:"skew,omitempty"`      // heavy-hitter fraction (skewed generators)
	Seed      int64    `json:"seed,omitempty"`      // generator seed (random-graph)
	Facts     []string `json:"facts,omitempty"`     // symbolic facts like "R(a, b)"
}

type createResponse struct {
	Session string `json:"session"`
	P       int    `json:"p"`
	Facts   int    `json:"facts"`
	Budget  int    `json:"budget"`
}

// queryRequest runs one query in a session.
type queryRequest struct {
	Session string `json:"session"`
	Query   string `json:"query"`
	Lang    string `json:"lang,omitempty"`   // cq (default) | datalog
	Out     string `json:"out,omitempty"`    // output relation (datalog)
	Budget  int    `json:"budget,omitempty"` // per-query max-load budget; server default when 0
}

// QueryResponse is the deterministic response surface: every field is
// a pure function of the session's own request history.
type QueryResponse struct {
	Session         string   `json:"session"`
	Query           string   `json:"query"` // canonical rendering
	Path            string   `json:"path"`  // reused | repartitioned | gathered
	MaxLoad         int      `json:"max_load"`
	Comm            int      `json:"comm"`
	BudgetSpent     int      `json:"budget_spent"`
	BudgetRemaining int      `json:"budget_remaining"`
	Count           int      `json:"count"`
	Output          []string `json:"output"`
}

// SessionStatus is the GET /v1/sessions/{id} body.
type SessionStatus struct {
	Session         string `json:"session"`
	P               int    `json:"p"`
	Facts           int    `json:"facts"`
	Anchor          string `json:"anchor,omitempty"`
	BudgetTotal     int    `json:"budget_total"`
	BudgetSpent     int    `json:"budget_spent"`
	BudgetRemaining int    `json:"budget_remaining"`
	Queries         int    `json:"queries"`
	Reused          int    `json:"reused"`
	Repartitioned   int    `json:"repartitioned"`
	Gathered        int    `json:"gathered"`
}

type deleteResponse struct {
	Session string `json:"session"`
	Deleted bool   `json:"deleted"`
}

type drainResponse struct {
	Draining bool `json:"draining"`
	Sessions int  `json:"sessions"`
}

type checkpointResponse struct {
	Dir      string `json:"dir"`
	Sessions int    `json:"sessions"`
}

type healthResponse struct {
	OK       bool `json:"ok"`
	Draining bool `json:"draining"`
	Sessions int  `json:"sessions"`
}

// StatzResponse reports the server-wide counters. These are
// interleaving-dependent snapshots (cache hits depend on which session
// parsed a query first), so they are deliberately OUTSIDE the
// deterministic response surface — no session response embeds them.
type StatzResponse struct {
	Sessions              int  `json:"sessions"`
	Draining              bool `json:"draining"`
	InFlight              int  `json:"in_flight"`
	Admitted              int  `json:"admitted"`
	Reused                int  `json:"reused"`
	Repartitioned         int  `json:"repartitioned"`
	Gathered              int  `json:"gathered"`
	RejectedBudget        int  `json:"rejected_budget"`
	RejectedSessionBudget int  `json:"rejected_session_budget"`
	RejectedOverloaded    int  `json:"rejected_overloaded"`
	RejectedDraining      int  `json:"rejected_draining"`
	PlanHits              int  `json:"plan_hits"`
	PlanMisses            int  `json:"plan_misses"`
	CoverHits             int  `json:"cover_hits"`
	CoverMisses           int  `json:"cover_misses"`
	CoverSkips            int  `json:"cover_skips"`
	CommTotal             int  `json:"comm_total"`
	SessionsCreated       int  `json:"sessions_created"`
	SessionsDestroyed     int  `json:"sessions_destroyed"`
	RestoredSessions      int  `json:"restored_sessions"`
}

// Statz snapshots the server-wide counters. Sessions and Draining are
// read before stats.mu: bump callers already hold sessMu, so nesting
// the locks the other way here would invert the order.
func (s *Server) Statz() StatzResponse {
	sessions, draining := s.Sessions(), s.Draining()
	s.stats.mu.Lock()
	defer s.stats.mu.Unlock()
	return StatzResponse{
		Sessions:              sessions,
		Draining:              draining,
		InFlight:              s.stats.inFlight,
		Admitted:              s.stats.admitted,
		Reused:                s.stats.reused,
		Repartitioned:         s.stats.repartitioned,
		Gathered:              s.stats.gathered,
		RejectedBudget:        s.stats.rejBudget,
		RejectedSessionBudget: s.stats.rejSessionBudget,
		RejectedOverloaded:    s.stats.rejOverloaded,
		RejectedDraining:      s.stats.rejDraining,
		PlanHits:              s.stats.planHits,
		PlanMisses:            s.stats.planMisses,
		CoverHits:             s.stats.coverHits,
		CoverMisses:           s.stats.coverMisses,
		CoverSkips:            s.stats.coverSkips,
		CommTotal:             s.stats.commTotal,
		SessionsCreated:       s.stats.sessionsCreated,
		SessionsDestroyed:     s.stats.sessionsDestroyed,
		RestoredSessions:      s.stats.restoredSessions,
	}
}

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/sessions      create a session (data + budget)
//	GET    /v1/sessions/{id} session status
//	DELETE /v1/sessions/{id} destroy a session
//	POST   /v1/query         run a query in a session
//	POST   /v1/drain         flip the drain barrier, wait for in-flight work
//	POST   /v1/checkpoint    drain + snapshot every session to Config.SnapshotDir
//	GET    /v1/healthz       liveness
//	GET    /v1/statz         server-wide counters (non-deterministic surface)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/drain", s.handleDrain)
	mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/statz", s.handleStatz)
	return mux
}

// decode reads one JSON request body, bounded by MaxBodyBytes.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) *apiError {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return errBodyTooLarge(s.cfg.MaxBodyBytes)
		}
		return errBadRequest("decoding request: %v", err)
	}
	if dec.More() {
		return errBadRequest("trailing data after request body")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		// Marshalling our own response structs cannot fail; keep the
		// handler total anyway.
		http.Error(w, `{"code":"internal","message":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b = append(b, '\n')
	_, _ = w.Write(b) //lint:allow error-discard a client that hung up forfeits its response
}

func writeErr(w http.ResponseWriter, e *apiError) { writeJSON(w, e.status, e) }

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if aerr := s.beginOp(); aerr != nil {
		s.bump(func(st *serverStats) { st.rejDraining++ })
		writeErr(w, aerr)
		return
	}
	defer s.endOp()
	var req createRequest
	if aerr := s.decode(w, r, &req); aerr != nil {
		writeErr(w, aerr)
		return
	}
	resp, aerr := s.createSession(&req)
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if aerr := s.beginOp(); aerr != nil {
		s.bump(func(st *serverStats) { st.rejDraining++ })
		writeErr(w, aerr)
		return
	}
	defer s.endOp()
	sess, aerr := s.session(r.PathValue("id"))
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, sess.status())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if aerr := s.beginOp(); aerr != nil {
		s.bump(func(st *serverStats) { st.rejDraining++ })
		writeErr(w, aerr)
		return
	}
	defer s.endOp()
	id := r.PathValue("id")
	if aerr := s.deleteSession(id); aerr != nil {
		writeErr(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, deleteResponse{Session: id, Deleted: true})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if aerr := s.beginOp(); aerr != nil {
		s.bump(func(st *serverStats) { st.rejDraining++ })
		writeErr(w, aerr)
		return
	}
	defer s.endOp()
	var req queryRequest
	if aerr := s.decode(w, r, &req); aerr != nil {
		writeErr(w, aerr)
		return
	}
	if req.Session == "" {
		writeErr(w, errBadRequest("query needs a session id"))
		return
	}
	sess, aerr := s.session(req.Session)
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	if aerr := s.acquireSlot(); aerr != nil {
		s.bump(func(st *serverStats) { st.rejOverloaded++ })
		writeErr(w, aerr)
		return
	}
	defer s.releaseSlot()
	s.bump(func(st *serverStats) { st.inFlight++ })
	resp, aerr := sess.run(&req)
	s.bump(func(st *serverStats) { st.inFlight-- })
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDrain deliberately skips beginOp: the drain request itself
// must pass the barrier it is about to raise, or it would deadlock
// waiting for its own in-flight count.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	s.Drain()
	writeJSON(w, http.StatusOK, drainResponse{Draining: true, Sessions: s.Sessions()})
}

// handleCheckpoint drains (idempotent) and snapshots to the
// server-configured directory. Like handleDrain it skips beginOp.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.cfg.SnapshotDir == "" {
		writeErr(w, errConflict("server has no snapshot directory configured"))
		return
	}
	if err := s.SaveSnapshot(s.cfg.SnapshotDir); err != nil {
		writeErr(w, errInternal(err))
		return
	}
	writeJSON(w, http.StatusOK, checkpointResponse{Dir: s.cfg.SnapshotDir, Sessions: s.Sessions()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{OK: true, Draining: s.Draining(), Sessions: s.Sessions()})
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Statz())
}
