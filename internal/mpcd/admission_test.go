package mpcd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"testing"
)

// TestAdmittedLoadWithinBudget is the admission-control property: over
// randomized instances and budgets, every admitted repartition reports
// a measured MaxLoad within the declared budget, and every rejection is
// typed with the required load it refused to ship.
func TestAdmittedLoadWithinBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	_, ts := newTestServer(t, Config{})
	for trial := 0; trial < 20; trial++ {
		id := fmt.Sprintf("adm%d", trial)
		n := 16 + rng.Intn(256)
		status, raw := do(t, "POST", ts.URL+"/v1/sessions", createRequest{
			ID: id, Generator: "random-graph", N: 32, M: n, Seed: int64(trial),
		})
		if status != http.StatusOK {
			t.Fatalf("create: %d %s", status, raw)
		}
		budget := 1 + rng.Intn(2*n)
		status, raw = do(t, "POST", ts.URL+"/v1/query", queryRequest{
			Session: id,
			Query:   "P(x, z) :- E(x, y), E(y, z)",
			Budget:  budget,
		})
		switch status {
		case http.StatusOK:
			var qr QueryResponse
			if err := json.Unmarshal(raw, &qr); err != nil {
				t.Fatalf("decode: %v", err)
			}
			if qr.MaxLoad > budget {
				t.Fatalf("trial %d: admitted max load %d > budget %d", trial, qr.MaxLoad, budget)
			}
		case http.StatusTooManyRequests:
			var e apiError
			if err := json.Unmarshal(raw, &e); err != nil {
				t.Fatalf("decode rejection: %v", err)
			}
			if e.Code != CodeBudgetExceeded {
				t.Fatalf("trial %d: rejection code %q", trial, e.Code)
			}
			if e.Required <= budget {
				t.Fatalf("trial %d: rejected with required %d ≤ budget %d", trial, e.Required, budget)
			}
		default:
			t.Fatalf("trial %d: unexpected status %d: %s", trial, status, raw)
		}
	}
}

// TestRejectionLeavesSessionUntouched pins that a budget rejection has
// no side effects: the session answers the retried query (with a budget
// that admits it) exactly as if the rejection never happened.
func TestRejectionLeavesSessionUntouched(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	do(t, "POST", ts.URL+"/v1/sessions", createRequest{ID: "rb", Facts: transferFacts()})

	_, before := do(t, "GET", ts.URL+"/v1/sessions/rb", nil)
	status, raw := do(t, "POST", ts.URL+"/v1/query", queryRequest{
		Session: "rb", Query: anchorQ, Budget: 1, // the join co-locates pairs: load ≥ 2 somewhere
	})
	if status != http.StatusTooManyRequests || errCode(t, raw) != CodeBudgetExceeded {
		t.Fatalf("want budget rejection, got %d %s", status, raw)
	}
	_, after := do(t, "GET", ts.URL+"/v1/sessions/rb", nil)
	if string(before) != string(after) {
		t.Fatalf("rejection mutated the session:\n  before %s\n  after  %s", before, after)
	}

	// A fresh server that never saw the rejection answers identically.
	_, ts2 := newTestServer(t, Config{})
	do(t, "POST", ts2.URL+"/v1/sessions", createRequest{ID: "rb", Facts: transferFacts()})
	got := query(t, ts.URL, "rb", anchorQ)
	ref := query(t, ts2.URL, "rb", anchorQ)
	gotRaw, _ := json.Marshal(got)
	refRaw, _ := json.Marshal(ref)
	if string(gotRaw) != string(refRaw) {
		t.Fatalf("post-rejection response diverged:\n  got %s\n  ref %s", gotRaw, refRaw)
	}
}

// TestSessionBudgetExhaustion drains a session's communication budget
// and checks the ledger math on the typed rejection.
func TestSessionBudgetExhaustion(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	do(t, "POST", ts.URL+"/v1/sessions", createRequest{ID: "ex", Facts: transferFacts(), Budget: 8})

	qr := query(t, ts.URL, "ex", anchorQ) // 6 facts ship: spends ≥ 6
	if qr.BudgetSpent == 0 || qr.BudgetRemaining != 8-qr.BudgetSpent {
		t.Fatalf("ledger: %+v", qr)
	}
	// The self-join needs another full shipment; the remainder can't pay.
	status, raw := do(t, "POST", ts.URL+"/v1/query", queryRequest{Session: "ex", Query: uncoveredQ})
	if status != http.StatusTooManyRequests || errCode(t, raw) != CodeSessionBudget {
		t.Fatalf("want session-budget rejection, got %d %s", status, raw)
	}
	// Covered queries still serve: reuse is free and stays admissible.
	free := query(t, ts.URL, "ex", coveredQ3)
	if free.Path != PathReused {
		t.Fatalf("reuse blocked by exhausted budget: %+v", free)
	}
}

// TestGatherChargedAgainstBudgets pins that the gather path prices |I|
// against the per-query budget.
func TestGatherChargedAgainstBudgets(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	do(t, "POST", ts.URL+"/v1/sessions", createRequest{ID: "gb", Generator: "cycle", N: 64})
	status, raw := do(t, "POST", ts.URL+"/v1/query", queryRequest{
		Session: "gb", Lang: LangDatalog, Out: "T",
		Query:  "T(x, y) :- E(x, y)",
		Budget: 63, // |I| = 64 > 63
	})
	if status != http.StatusTooManyRequests || errCode(t, raw) != CodeBudgetExceeded {
		t.Fatalf("gather over budget: %d %s", status, raw)
	}
	status, raw = do(t, "POST", ts.URL+"/v1/query", queryRequest{
		Session: "gb", Lang: LangDatalog, Out: "T",
		Query:  "T(x, y) :- E(x, y)",
		Budget: 64,
	})
	if status != http.StatusOK {
		t.Fatalf("gather at budget: %d %s", status, raw)
	}
	var qr QueryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if qr.MaxLoad != 64 || qr.Comm != 64 {
		t.Fatalf("gather cost: %+v", qr)
	}
}

// TestOverloadTyped fills every concurrency slot by hand and checks the
// queue bound rejects typed once MaxQueued waiters are already parked.
func TestOverloadTyped(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueued: 1})
	do(t, "POST", ts.URL+"/v1/sessions", createRequest{ID: "ov", Facts: []string{"R(a, b)"}})

	// Occupy the only slot and the only queue seat from the test.
	s.slots <- struct{}{}
	s.slotMu.Lock()
	s.waiting++
	s.slotMu.Unlock()

	status, raw := do(t, "POST", ts.URL+"/v1/query", queryRequest{Session: "ov", Query: "A(x) :- R(x, y)"})
	if status != http.StatusTooManyRequests || errCode(t, raw) != CodeOverloaded {
		t.Fatalf("overload: %d %s", status, raw)
	}
	if s.Statz().RejectedOverloaded != 1 {
		t.Fatalf("statz: %+v", s.Statz())
	}

	// Release the synthetic load: the parked waiter seat frees and the
	// next query serves normally.
	s.slotMu.Lock()
	s.waiting--
	s.slotMu.Unlock()
	<-s.slots
	qr := query(t, ts.URL, "ov", "A(x) :- R(x, y)")
	if qr.Count != 1 {
		t.Fatalf("post-overload query: %+v", qr)
	}
}

// TestDrainNeverStrands runs queries from many goroutines while a drain
// races in: every request gets exactly one response — a real answer or
// a typed draining rejection, never a hang or a torn state — and the
// server lands with zero in-flight queries.
func TestDrainNeverStrands(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for i := 0; i < 4; i++ {
		do(t, "POST", ts.URL+"/v1/sessions", createRequest{
			ID: fmt.Sprintf("dr%d", i), Generator: "join", N: 128,
		})
	}

	const clients = 16
	results := make([]string, clients)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) { // no t.Fatal here: it must not fire off the test goroutine
			defer wg.Done()
			<-start
			sess := fmt.Sprintf("dr%d", i%4)
			body, _ := json.Marshal(queryRequest{Session: sess, Query: anchorQ})
			resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
			if err != nil {
				results[i] = "transport: " + err.Error()
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				results[i] = "ok"
			case http.StatusServiceUnavailable:
				var e apiError
				if json.Unmarshal(raw, &e) == nil {
					results[i] = e.Code
				} else {
					results[i] = "undecodable 503: " + string(raw)
				}
			default:
				results[i] = fmt.Sprintf("unexpected %d: %s", resp.StatusCode, raw)
			}
		}(i)
	}
	close(start)
	s.Drain() // races with the clients; waits for all admitted work
	wg.Wait()

	for i, r := range results {
		if r != "ok" && r != CodeDraining {
			t.Fatalf("client %d: %s", i, r)
		}
	}
	sz := s.Statz()
	if sz.InFlight != 0 {
		t.Fatalf("drain stranded %d in-flight queries", sz.InFlight)
	}
	if !sz.Draining {
		t.Fatal("server not draining after Drain returned")
	}
}
