package loadgen

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"mpclogic/internal/mpcd"
)

func runOnce(t *testing.T, cfg Config, serverCfg mpcd.Config) *Report {
	t.Helper()
	srv := mpcd.New(serverCfg)
	rep, err := Run(cfg, &HandlerClient{H: srv.Handler()})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return rep
}

// TestRunDeterministic is the harness's reason to exist: same seed,
// fresh servers, byte-identical reports for a fixed worker count — and
// the run's identity (digest plus every counter except the makespan,
// which by construction depends on how sessions split across workers)
// invariant under concurrency.
func TestRunDeterministic(t *testing.T) {
	ref := runOnce(t, Config{Sessions: 24, Queries: 12, Seed: 7, Workers: 4}, mpcd.Config{})
	refRaw, err := json.Marshal(ref)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	again, err := json.Marshal(runOnce(t, Config{Sessions: 24, Queries: 12, Seed: 7, Workers: 4}, mpcd.Config{}))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if string(again) != string(refRaw) {
		t.Fatalf("same config, different report:\n  ref %s\n  got %s", refRaw, again)
	}
	for _, workers := range []int{1, 24} {
		got := runOnce(t, Config{Sessions: 24, Queries: 12, Seed: 7, Workers: workers}, mpcd.Config{})
		got.VirtualSpan = ref.VirtualSpan // the one worker-count-dependent field
		gotRaw, err := json.Marshal(got)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if string(gotRaw) != string(refRaw) {
			t.Fatalf("workers=%d run diverged:\n  ref %s\n  got %s", workers, refRaw, gotRaw)
		}
	}
}

// TestRunSeedSensitivity pins that the seed actually steers the
// scripts: different seeds, different digests.
func TestRunSeedSensitivity(t *testing.T) {
	a := runOnce(t, Config{Sessions: 8, Queries: 8, Seed: 1}, mpcd.Config{})
	b := runOnce(t, Config{Sessions: 8, Queries: 8, Seed: 2}, mpcd.Config{})
	if a.Digest == b.Digest {
		t.Fatal("different seeds produced identical runs")
	}
}

// TestRunExercisesAllPaths checks the generated mix reaches every
// serving path and produces typed rejections.
func TestRunExercisesAllPaths(t *testing.T) {
	rep := runOnce(t, Config{Sessions: 16, Queries: 16, Seed: 3}, mpcd.Config{})
	if rep.Reused == 0 || rep.Repartitioned == 0 || rep.Gathered == 0 {
		t.Fatalf("mix missed a serving path: %+v", rep)
	}
	if rep.Rejected[mpcd.CodeParse] == 0 {
		t.Fatalf("mix produced no parse rejections: %v", rep.Rejected)
	}
	if rep.OK+totalRejected(rep) != rep.Queries {
		t.Fatalf("queries unaccounted for: ok %d + rejected %d != %d", rep.OK, totalRejected(rep), rep.Queries)
	}
	if rep.VirtualSpan > rep.VirtualTicks || rep.MaxSessTicks > rep.VirtualSpan {
		t.Fatalf("virtual clock inconsistent: %+v", rep)
	}
}

// TestReuseBeatsBaseline is the soak's comm assertion in miniature:
// the same load costs strictly less communication with reuse on, with
// identical admission outcomes.
func TestReuseBeatsBaseline(t *testing.T) {
	cfg := Config{Sessions: 12, Queries: 12, Seed: 5}
	on := runOnce(t, cfg, mpcd.Config{})
	off := runOnce(t, cfg, mpcd.Config{DisableReuse: true})
	if on.Reused == 0 || off.Reused != 0 {
		t.Fatalf("reuse counters: on=%d off=%d", on.Reused, off.Reused)
	}
	if on.Comm >= off.Comm {
		t.Fatalf("reuse comm %d, baseline %d: want strictly less", on.Comm, off.Comm)
	}
	// Reuse can only admit MORE: a covered query is free, so it skips
	// the budget gate a repartition might trip on.
	if on.OK < off.OK {
		t.Fatalf("reuse rejected queries the baseline admitted: ok %d vs %d", on.OK, off.OK)
	}
}

// TestHTTPClientMatchesHandlerClient pins the transport seam: the same
// run over real loopback HTTP and in-process produces the same digest.
func TestHTTPClientMatchesHandlerClient(t *testing.T) {
	cfg := Config{Sessions: 6, Queries: 8, Seed: 9}
	inproc := runOnce(t, cfg, mpcd.Config{})

	ts := httptest.NewServer(mpcd.New(mpcd.Config{}).Handler())
	defer ts.Close()
	wire, err := Run(cfg, &HTTPClient{Base: ts.URL})
	if err != nil {
		t.Fatalf("run over HTTP: %v", err)
	}
	if wire.Digest != inproc.Digest {
		t.Fatalf("transport changed the run: http %s, in-process %s", wire.Digest, inproc.Digest)
	}
}

// TestReportString pins the report rendering is stable and complete.
func TestReportString(t *testing.T) {
	rep := runOnce(t, Config{Sessions: 4, Queries: 8, Seed: 11}, mpcd.Config{})
	s := rep.String()
	for _, want := range []string{"sessions=4", "paths:", "digest=" + rep.Digest} {
		if !strings.Contains(s, want) {
			t.Fatalf("report %q missing %q", s, want)
		}
	}
	if rep2 := runOnce(t, Config{Sessions: 4, Queries: 8, Seed: 11}, mpcd.Config{}); rep2.String() != s {
		t.Fatal("report rendering unstable across identical runs")
	}
}

func totalRejected(r *Report) int {
	n := 0
	for _, v := range r.Rejected {
		n += v
	}
	return n
}
