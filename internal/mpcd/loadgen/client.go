package loadgen

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
)

// HTTPClient drives a real server over the network.
type HTTPClient struct {
	Base string       // e.g. "http://127.0.0.1:7443"
	C    *http.Client // http.DefaultClient when nil
}

func (h *HTTPClient) Do(method, path string, body []byte) (int, []byte, error) {
	c := h.C
	if c == nil {
		c = http.DefaultClient
	}
	req, err := http.NewRequest(method, h.Base+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, raw, nil
}

// HandlerClient drives an http.Handler in-process — the same bytes as
// HTTPClient, no sockets. This is what the soak target uses to push
// thousands of sessions without tying up ports.
type HandlerClient struct {
	H http.Handler
}

func (h *HandlerClient) Do(method, path string, body []byte) (int, []byte, error) {
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.H.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes(), nil
}
