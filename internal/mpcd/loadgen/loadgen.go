// Package loadgen is mpcd's deterministic load harness: seeded clients
// replay generated query scripts against a server — in-process or over
// real HTTP — and account for the run on a virtual clock derived from
// the model's own cost fields, never wall time. Two runs with the same
// configuration produce byte-identical reports, which is what lets the
// soak target assert anything at all: an epoch's digest either matches
// the last epoch's or the server broke determinism.
package loadgen

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Config sizes a run.
type Config struct {
	Sessions int   // concurrent sessions to drive (default 8)
	Queries  int   // queries per session (default 16)
	Workers  int   // client goroutines; sessions are split index-disjoint (default 8)
	Seed     int64 // script seed; same seed, same scripts (default 1)
}

func (c Config) withDefaults() Config {
	if c.Sessions <= 0 {
		c.Sessions = 8
	}
	if c.Queries <= 0 {
		c.Queries = 16
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Workers > c.Sessions {
		c.Workers = c.Sessions
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Report is a run's deterministic summary. Every field is a pure
// function of (Config, server config): counters aggregate per-session
// results, and the virtual clock prices a query at 1 tick of overhead
// plus its MaxLoad (the model's cost: the busiest server's work), so
// latency and throughput are properties of the workload, not the host.
type Report struct {
	Sessions int `json:"sessions"`
	Queries  int `json:"queries"` // total issued
	OK       int `json:"ok"`

	Reused        int `json:"reused"`
	Repartitioned int `json:"repartitioned"`
	Gathered      int `json:"gathered"`

	Rejected map[string]int `json:"rejected"` // typed code → count

	Comm          int `json:"comm"`           // total facts shipped
	VirtualTicks  int `json:"virtual_ticks"`  // sum of per-query costs
	VirtualSpan   int `json:"virtual_span"`   // busiest worker's ticks (makespan)
	MaxSessTicks  int `json:"max_sess_ticks"` // slowest single session

	SessionDigests []string `json:"session_digests"` // per-session response-stream sha256, session order
	Digest         string   `json:"digest"`          // digest of the digests: the run's identity
}

// Client is the transport seam: Do issues one API request and returns
// the status code and raw response body.
type Client interface {
	Do(method, path string, body []byte) (int, []byte, error)
}

// queryRequest / queryResponse mirror mpcd's JSON surface. loadgen
// speaks the wire format rather than importing mpcd's internals so the
// HTTP client and the in-process client exercise the same bytes.
type queryRequest struct {
	Session string `json:"session"`
	Query   string `json:"query"`
	Lang    string `json:"lang,omitempty"`
	Out     string `json:"out,omitempty"`
	Budget  int    `json:"budget,omitempty"`
}

type queryResponse struct {
	Path    string `json:"path"`
	MaxLoad int    `json:"max_load"`
	Comm    int    `json:"comm"`
	Code    string `json:"code"` // set on error envelopes
}

type createRequest struct {
	ID        string `json:"id"`
	Generator string `json:"generator,omitempty"`
	N         int    `json:"n,omitempty"`
	M         int    `json:"m,omitempty"`
	Seed      int64  `json:"seed,omitempty"`

	Facts []string `json:"facts,omitempty"`
}

// The script's query mix: the anchor join, queries its distribution
// provably covers, an uncovered self-join, a Datalog program, a CQ¬,
// a starved budget (typed rejection), and a parse error. Weights sum
// to 100.
type scriptStep struct {
	weight int
	req    queryRequest
}

var steps = []scriptStep{
	{25, queryRequest{Query: "A(x, z) :- R(x, y), S(y, z)"}},
	{15, queryRequest{Query: "B(x) :- R(x, y), S(y, z)"}},
	{10, queryRequest{Query: "C(z, x) :- S(y, z), R(x, y)"}},
	{10, queryRequest{Query: "D(x, y) :- R(x, y)"}},
	{10, queryRequest{Query: "D(x, z) :- R(x, y), R(y, z)"}},
	{10, queryRequest{Query: "T(x, y) :- E(x, y)\nT(x, z) :- T(x, y), E(y, z)", Lang: "datalog", Out: "T"}},
	{5, queryRequest{Query: "N(x, y) :- R(x, y), not S(y)"}},
	{10, queryRequest{Query: "A(x, z) :- R(x, y), S(y, z)", Budget: 1}},
	{5, queryRequest{Query: "A(x :- R("}},
}

func pickStep(r *rand.Rand) queryRequest {
	n := r.Intn(100)
	for _, s := range steps {
		if n < s.weight {
			return s.req
		}
		n -= s.weight
	}
	return steps[0].req // unreachable: weights sum to 100
}

// sessionScript derives session i's create request and query sequence
// from the run seed alone. Mixing with a large odd constant decorrelates
// neighboring sessions without wall-clock or global state.
func sessionScript(cfg Config, i int) (createRequest, []queryRequest) {
	r := rand.New(rand.NewSource(cfg.Seed ^ (int64(i)+1)*0x5851F42D4C957F2D))
	id := fmt.Sprintf("lg%d", i)
	create := createRequest{ID: id}
	if r.Intn(2) == 0 {
		create.Generator, create.N = "join", 16+r.Intn(112)
	} else {
		create.Generator, create.N, create.M = "random-graph", 16, 32 + r.Intn(96)
		create.Seed = int64(i)
	}
	qs := make([]queryRequest, cfg.Queries)
	for k := range qs {
		qs[k] = pickStep(r)
		qs[k].Session = id
	}
	return create, qs
}

// sessionResult is one session's deterministic outcome.
type sessionResult struct {
	ok, reused, repartitioned, gathered int
	rejected                            map[string]int
	comm, ticks                         int
	digest                              string
}

// runSession creates one session and replays its script, hashing every
// raw response body into the session digest.
func runSession(cfg Config, c Client, i int) (sessionResult, error) {
	res := sessionResult{rejected: make(map[string]int)}
	create, qs := sessionScript(cfg, i)
	body, err := json.Marshal(create)
	if err != nil {
		return res, err
	}
	status, raw, err := c.Do("POST", "/v1/sessions", body)
	if err != nil {
		return res, fmt.Errorf("session %d create: %w", i, err)
	}
	if status != 200 {
		return res, fmt.Errorf("session %d create: %d %s", i, status, raw)
	}
	h := sha256.New()
	for k, q := range qs {
		body, err := json.Marshal(q)
		if err != nil {
			return res, err
		}
		status, raw, err := c.Do("POST", "/v1/query", body)
		if err != nil {
			return res, fmt.Errorf("session %d query %d: %w", i, k, err)
		}
		_, _ = fmt.Fprintf(h, "%d\n", status) //lint:allow error-discard hash writers never fail
		_, _ = h.Write(raw)                   //lint:allow error-discard hash writers never fail
		var qr queryResponse
		if err := json.Unmarshal(raw, &qr); err != nil {
			return res, fmt.Errorf("session %d query %d: undecodable body %q", i, k, raw)
		}
		res.ticks++ // a query costs one tick of overhead…
		if status == 200 {
			res.ok++
			res.comm += qr.Comm
			res.ticks += qr.MaxLoad // …plus the busiest server's work
			switch qr.Path {
			case "reused":
				res.reused++
			case "repartitioned":
				res.repartitioned++
			case "gathered":
				res.gathered++
			default:
				return res, fmt.Errorf("session %d query %d: unknown path %q", i, k, qr.Path)
			}
			continue
		}
		if qr.Code == "" {
			return res, fmt.Errorf("session %d query %d: untyped rejection %d %s", i, k, status, raw)
		}
		res.rejected[qr.Code]++
	}
	res.digest = hex.EncodeToString(h.Sum(nil))
	return res, nil
}

// Run drives cfg.Sessions sessions through c from cfg.Workers client
// goroutines, worker w owning sessions w, w+Workers, … (index-disjoint,
// so no result slot is shared). It returns the aggregated report; any
// transport error or protocol violation fails the whole run.
func Run(cfg Config, c Client) (*Report, error) {
	cfg = cfg.withDefaults()

	// One goroutine per session writing only its own slot (the index is
	// the closure's parameter, so the writes are provably disjoint); a
	// semaphore bounds actual concurrency to cfg.Workers. The makespan
	// is computed afterwards from the static round-robin assignment
	// (session i belongs to virtual client i mod Workers), so it is a
	// pure function of the results, never of scheduling.
	results := make([]sessionResult, cfg.Sessions)
	errs := make([]error, cfg.Sessions)
	sem := make(chan struct{}, cfg.Workers)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			results[i], errs[i] = runSession(cfg, c, i)
			<-sem
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("loadgen: session %d: %w", i, err)
		}
	}
	spans := make([]int, cfg.Workers)
	for i, r := range results {
		spans[i%cfg.Workers] += r.ticks
	}

	rep := &Report{
		Sessions: cfg.Sessions,
		Queries:  cfg.Sessions * cfg.Queries,
		Rejected: make(map[string]int),
	}
	all := sha256.New()
	for i, r := range results {
		rep.OK += r.ok
		rep.Reused += r.reused
		rep.Repartitioned += r.repartitioned
		rep.Gathered += r.gathered
		rep.Comm += r.comm
		rep.VirtualTicks += r.ticks
		if r.ticks > rep.MaxSessTicks {
			rep.MaxSessTicks = r.ticks
		}
		for code, n := range r.rejected {
			rep.Rejected[code] += n
		}
		rep.SessionDigests = append(rep.SessionDigests, r.digest)
		_, _ = fmt.Fprintf(all, "%d %s\n", i, r.digest) //lint:allow error-discard hash writers never fail
	}
	for _, s := range spans {
		if s > rep.VirtualSpan {
			rep.VirtualSpan = s
		}
	}
	rep.Digest = hex.EncodeToString(all.Sum(nil))
	return rep, nil
}

// Codes returns the rejection codes seen, sorted, for stable reports.
func (r *Report) Codes() []string {
	codes := make([]string, 0, len(r.Rejected))
	for c := range r.Rejected {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	return codes
}

// String renders the report as one line per metric, stable across runs.
func (r *Report) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "sessions=%d queries=%d ok=%d\n", r.Sessions, r.Queries, r.OK)
	fmt.Fprintf(&b, "paths: reused=%d repartitioned=%d gathered=%d\n", r.Reused, r.Repartitioned, r.Gathered)
	for _, c := range r.Codes() {
		fmt.Fprintf(&b, "rejected[%s]=%d\n", c, r.Rejected[c])
	}
	fmt.Fprintf(&b, "comm=%d virtual_ticks=%d virtual_span=%d max_sess_ticks=%d\n",
		r.Comm, r.VirtualTicks, r.VirtualSpan, r.MaxSessTicks)
	fmt.Fprintf(&b, "digest=%s\n", r.Digest)
	return b.String()
}
