package mpcd

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzQueryRequest drives the full HTTP surface — decode, parse, plan,
// admit, respond — with arbitrary bodies against a live session. The
// properties: the server never panics, always answers exactly one JSON
// document, never leaks a 5xx for client-supplied garbage, and error
// responses always carry a typed code.
func FuzzQueryRequest(f *testing.F) {
	f.Add(`{"session": "fz", "query": "A(x, z) :- R(x, y), S(y, z)"}`)
	f.Add(`{"session": "fz", "query": "B(x) :- R(x, y), S(y, z)"}`)
	f.Add(`{"session": "fz", "query": "D(x, z) :- R(x, y), R(y, z)", "budget": 1}`)
	f.Add(`{"session": "fz", "query": "T(x, y) :- E(x, y)\nT(x, z) :- T(x, y), E(y, z)", "lang": "datalog", "out": "T"}`)
	f.Add(`{"session": "fz", "query": "A(x) :- R(x, y), not S(y)"}`)
	f.Add(`{"session": "nope", "query": "A(x) :- R(x, y)"}`)
	f.Add(`{"session": "fz", "query": "A(x :- R("}`)
	f.Add(`{"session": "fz"}`)
	f.Add(`{}`)
	f.Add(`{"session": "fz", "query": "A(x) :- R(x, y)", "lang": "sql"}`)
	f.Add(`{"session": "fz", "query": "A(x) :- R(x, y)"} trailing`)
	f.Add(`not json at all`)
	f.Add(``)
	f.Add(`[1, 2, 3]`)
	f.Add(`{"session": "fz", "query": "A(z) :- R(x, y)"}`)
	f.Add(`{"session": "fz", "query": "A(x, z) :- R(x, y), S(y, z)", "budget": -7}`)

	srv := New(Config{MaxBodyBytes: 1 << 14})
	ts := httptest.NewServer(srv.Handler())
	f.Cleanup(ts.Close)
	// One live session with a warm anchor so fuzzed queries can reach
	// all three serving paths.
	for _, body := range []string{
		`{"id": "fz", "facts": ["R(a, b)", "R(b, c)", "S(b, u)", "S(c, v)", "E(a, b)"]}`,
		`{"session": "fz", "query": "A(x, z) :- R(x, y), S(y, z)"}`,
	} {
		path := "/v1/sessions"
		if strings.Contains(body, `"query"`) {
			path = "/v1/query"
		}
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			f.Fatalf("priming: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			f.Fatalf("priming %s: %d", path, resp.StatusCode)
		}
	}

	f.Fuzz(func(t *testing.T, body string) {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
		if err != nil {
			// Transport errors are the harness's problem, not a server
			// property; the server must still be alive for the next input.
			t.Skip()
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil {
			t.Fatalf("reading response for input %q: %v", body, err)
		}

		if resp.StatusCode >= 500 {
			t.Fatalf("server 5xx for client input %q: %s", body, raw)
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		if resp.StatusCode == http.StatusOK {
			var qr QueryResponse
			if err := dec.Decode(&qr); err != nil {
				t.Fatalf("200 with undecodable body %q: %v", raw, err)
			}
			if qr.Path != PathReused && qr.Path != PathRepartitioned && qr.Path != PathGathered {
				t.Fatalf("200 with unknown path %q", qr.Path)
			}
		} else {
			var e apiError
			if err := dec.Decode(&e); err != nil {
				t.Fatalf("%d with undecodable body %q: %v", resp.StatusCode, raw, err)
			}
			if e.Code == "" || e.Message == "" {
				t.Fatalf("%d with untyped error %q", resp.StatusCode, raw)
			}
		}

		// The session must survive every input intact.
		hr, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatalf("server died after input %q: %v", body, err)
		}
		hr.Body.Close()
		if hr.StatusCode != http.StatusOK {
			t.Fatalf("unhealthy after input %q: %d", body, hr.StatusCode)
		}
	})
}
