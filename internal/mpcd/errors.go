package mpcd

import (
	"fmt"
	"net/http"
)

// Error codes of the JSON error envelope. Rejections are part of the
// API contract: admission-control tests assert the exact code, so
// changing one is a breaking change.
const (
	// CodeBadRequest is a malformed request: undecodable JSON, a
	// missing required field, an unknown language or generator.
	CodeBadRequest = "bad_request"
	// CodeParse is a query that failed to parse.
	CodeParse = "parse_error"
	// CodeNotFound is an unknown session id.
	CodeNotFound = "not_found"
	// CodeBodyTooLarge is a request body over Config.MaxBodyBytes.
	CodeBodyTooLarge = "body_too_large"
	// CodeBudgetExceeded is the per-query admission rejection: the
	// counted MaxLoad of the query exceeds its declared budget. The
	// query did NOT run; the session is unchanged.
	CodeBudgetExceeded = "budget_exceeded"
	// CodeSessionBudget is the per-session admission rejection: the
	// query's total communication would overdraw the session's
	// remaining budget. The query did NOT run.
	CodeSessionBudget = "session_budget_exhausted"
	// CodeOverloaded is the load-shedding rejection: MaxConcurrent
	// queries are executing and MaxQueued more are already waiting.
	CodeOverloaded = "overloaded"
	// CodeDraining is the shutdown rejection: the drain barrier has
	// flipped and the server no longer accepts operations.
	CodeDraining = "draining"
	// CodeSessionLimit is the session-table rejection: MaxSessions
	// sessions are live.
	CodeSessionLimit = "session_limit"
	// CodeConflict is a create with an id that is already live, or a
	// checkpoint on a server that has not drained.
	CodeConflict = "conflict"
	// CodeInternal is a bug: an engine invariant failed mid-query.
	CodeInternal = "internal"
)

// apiError is the typed error envelope every non-2xx response carries.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Required and Budget detail admission rejections: the load the
	// query needed and the budget it declared (or the session had).
	Required int `json:"required,omitempty"`
	Budget   int `json:"budget,omitempty"`

	status int `json:"-"`
}

func (e *apiError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

func errBadRequest(format string, args ...any) *apiError {
	return &apiError{Code: CodeBadRequest, Message: fmt.Sprintf(format, args...), status: http.StatusBadRequest}
}

func errParse(err error) *apiError {
	return &apiError{Code: CodeParse, Message: err.Error(), status: http.StatusBadRequest}
}

func errNotFound(id string) *apiError {
	return &apiError{Code: CodeNotFound, Message: fmt.Sprintf("no session %q", id), status: http.StatusNotFound}
}

func errBodyTooLarge(limit int64) *apiError {
	return &apiError{Code: CodeBodyTooLarge, Message: fmt.Sprintf("request body exceeds %d bytes", limit), status: http.StatusRequestEntityTooLarge}
}

func errBudgetExceeded(required, budget int) *apiError {
	return &apiError{
		Code:     CodeBudgetExceeded,
		Message:  fmt.Sprintf("query needs max load %d but declared budget %d; not admitted", required, budget),
		Required: required,
		Budget:   budget,
		status:   http.StatusTooManyRequests,
	}
}

func errSessionBudget(required, remaining int) *apiError {
	return &apiError{
		Code:     CodeSessionBudget,
		Message:  fmt.Sprintf("query ships %d facts but the session has %d budget left; not admitted", required, remaining),
		Required: required,
		Budget:   remaining,
		status:   http.StatusTooManyRequests,
	}
}

func errOverloaded(concurrent, queued int) *apiError {
	return &apiError{
		Code:    CodeOverloaded,
		Message: fmt.Sprintf("%d queries executing and %d queued; try again later", concurrent, queued),
		status:  http.StatusTooManyRequests,
	}
}

func errDraining() *apiError {
	return &apiError{Code: CodeDraining, Message: "server is draining", status: http.StatusServiceUnavailable}
}

func errSessionLimit(limit int) *apiError {
	return &apiError{Code: CodeSessionLimit, Message: fmt.Sprintf("session limit %d reached", limit), status: http.StatusTooManyRequests}
}

func errConflict(format string, args ...any) *apiError {
	return &apiError{Code: CodeConflict, Message: fmt.Sprintf(format, args...), status: http.StatusConflict}
}

func errInternal(err error) *apiError {
	return &apiError{Code: CodeInternal, Message: err.Error(), status: http.StatusInternalServerError}
}
