package mpcd

import (
	"sync"

	"mpclogic/internal/cq"
	"mpclogic/internal/datalog"
	"mpclogic/internal/hypercube"
	"mpclogic/internal/pc"
)

// Query languages accepted by the query endpoint.
const (
	LangCQ      = "cq"
	LangDatalog = "datalog"
)

// queryPlan is the server-wide, dict-independent part of a parsed
// query: its canonical key, the dimensions the cover gate inspects,
// and the integer share assignment per cluster width. Sessions keep
// their own ASTs (interning is session-scoped, see Server.sessions),
// but the share-exponent LP and the Πᵖ₃ cover search depend only on
// the canonical text, so their results are computed once here and
// serve every session.
type queryPlan struct {
	key      string // lang + output relation + canonical text
	lang     string
	gridable bool // CQ without negation: a HyperCube grid exists
	vars     int  // |vars(Q)|, cover-gate dimension
	atoms    int  // positive body atoms, cover-gate dimension

	mu     sync.Mutex
	shares map[int]sharesResult // cluster width → share assignment
}

type sharesResult struct {
	shares map[string]int
	err    error
}

// sessionQuery is one session's parsed view of a plan: ASTs whose
// constants are interned in the session's own dict.
type sessionQuery struct {
	plan   *queryPlan
	cq     *cq.CQ           // non-nil for LangCQ
	prog   *datalog.Program // non-nil for LangDatalog
	outRel string           // relation holding the answer
	text   string           // canonical query text
}

// parseQuery parses src against the session's dict and resolves the
// shared plan, consulting the session's raw-text cache first so a
// repeated query costs one map lookup. Callers hold sess.mu.
func (sess *Session) parseQuery(lang, src, out string) (*sessionQuery, *apiError) {
	if lang == "" {
		lang = LangCQ
	}
	rawKey := lang + "\x00" + out + "\x00" + src
	if sq, ok := sess.parsed[rawKey]; ok {
		sess.srv.bump(func(st *serverStats) { st.planHits++ })
		return sq, nil
	}
	sq := &sessionQuery{}
	switch lang {
	case LangCQ:
		q, err := cq.Parse(sess.dict, src)
		if err != nil {
			return nil, errParse(err)
		}
		if err := q.Validate(); err != nil {
			return nil, errParse(err)
		}
		sq.cq, sq.outRel, sq.text = q, q.Head.Rel, q.String()
	case LangDatalog:
		if out == "" {
			return nil, errBadRequest("datalog queries need an output relation (set \"out\")")
		}
		p, err := datalog.Parse(sess.dict, src)
		if err != nil {
			return nil, errParse(err)
		}
		sq.prog, sq.outRel, sq.text = p, out, p.String()
	default:
		return nil, errBadRequest("unknown query language %q (want %q or %q)", lang, LangCQ, LangDatalog)
	}
	sq.plan = sess.srv.planFor(lang, sq.text, sq.outRel, sq.cq)
	sess.parsed[rawKey] = sq
	return sq, nil
}

// planFor returns the shared plan for a canonical query, creating it
// on first sight.
func (s *Server) planFor(lang, canon, out string, q *cq.CQ) *queryPlan {
	key := lang + "\x00" + out + "\x00" + canon
	s.planMu.Lock()
	defer s.planMu.Unlock()
	if pl, ok := s.plans[key]; ok {
		s.bump(func(st *serverStats) { st.planHits++ })
		return pl
	}
	pl := &queryPlan{key: key, lang: lang, shares: make(map[int]sharesResult)}
	if q != nil {
		pl.gridable = !q.HasNegation()
		pl.vars = len(q.Vars())
		pl.atoms = len(q.Body)
	}
	s.plans[key] = pl
	s.bump(func(st *serverStats) { st.planMisses++ })
	return pl
}

// sharesFor returns the plan's integer share assignment on p servers,
// solving the share-exponent LP once per width. q is the caller's AST
// for the same canonical text; the LP sees only variables and atom
// structure, so any session's parse yields the same assignment.
func (pl *queryPlan) sharesFor(q *cq.CQ, p int) (map[string]int, error) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if r, ok := pl.shares[p]; ok {
		return r.shares, r.err
	}
	shares, _, err := hypercube.OptimalShares(q, p)
	pl.shares[p] = sharesResult{shares: shares, err: err}
	return shares, err
}

// covers decides whether the anchor's distribution can be reused for
// cand — parallel-correctness transfer, with caching and a size gate.
// Deciding Covers is Πᵖ₃-complete, so the exponential search only runs
// when both queries are small enough (MaxCoverVars/MaxCoverAtoms) that
// it is effectively instant; bigger queries skip straight to
// repartitioning rather than stall the serving path. Identical
// canonical text short-circuits: transfer is reflexive. Decisions
// depend only on the canonical text pair — injectively renaming the
// interned constants changes nothing the search compares — so the
// cache is server-wide even though ASTs are per-session.
func (s *Server) coversFor(anchor, cand *sessionQuery) bool {
	a, c := anchor.plan, cand.plan
	if a.lang != LangCQ || c.lang != LangCQ || !a.gridable || !c.gridable {
		return false
	}
	if a.key == c.key {
		s.bump(func(st *serverStats) { st.coverHits++ })
		return true
	}
	if a.vars > s.cfg.MaxCoverVars || c.vars > s.cfg.MaxCoverVars ||
		a.atoms > s.cfg.MaxCoverAtoms || c.atoms > s.cfg.MaxCoverAtoms {
		s.bump(func(st *serverStats) { st.coverSkips++ })
		return false
	}
	key := a.key + "\x01" + c.key
	s.planMu.Lock()
	v, ok := s.covers[key]
	s.planMu.Unlock()
	if ok {
		s.bump(func(st *serverStats) { st.coverHits++ })
		return v
	}
	v, _, err := pc.Covers(anchor.cq, cand.cq)
	if err != nil {
		// Covers rejects query shapes it cannot decide (negation);
		// gridable filtered those above, but stay conservative: an
		// undecided pair repartitions, which is always correct.
		v = false
	}
	s.planMu.Lock()
	s.covers[key] = v
	s.planMu.Unlock()
	s.bump(func(st *serverStats) { st.coverMisses++ })
	return v
}
