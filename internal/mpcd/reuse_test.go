package mpcd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

// query runs one query and decodes the response, failing on any error.
func query(t *testing.T, url, session, q string) QueryResponse {
	t.Helper()
	status, raw := do(t, "POST", url+"/v1/query", queryRequest{Session: session, Query: q})
	if status != http.StatusOK {
		t.Fatalf("query %q: %d %s", q, status, raw)
	}
	var qr QueryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return qr
}

// The transfer workload: anchor a two-atom join, then queries the
// anchor's distribution provably covers (same body modulo projection
// and reorder, and a body subset) and one it provably does not (a
// self-join over R needs R replicated by both columns).
const (
	anchorQ    = "A(x, z) :- R(x, y), S(y, z)"
	coveredQ1  = "B(x) :- R(x, y), S(y, z)"      // projection of the anchor
	coveredQ2  = "C(z, x) :- S(y, z), R(x, y)"   // reordered body, swapped head
	coveredQ3  = "D(x, y) :- R(x, y)"            // body subset
	uncoveredQ = "D(x, z) :- R(x, y), R(y, z)"   // self-join: not covered
)

func transferFacts() []string {
	return []string{
		"R(a, b)", "R(b, c)", "R(c, d)",
		"S(b, u)", "S(c, v)", "S(d, w)",
	}
}

func TestReusePathZeroComm(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	do(t, "POST", ts.URL+"/v1/sessions", createRequest{ID: "ru", Facts: transferFacts()})

	first := query(t, ts.URL, "ru", anchorQ)
	if first.Path != PathRepartitioned {
		t.Fatalf("anchor path %q, want repartitioned", first.Path)
	}

	// Same query again: transfer is reflexive, distribution is warm.
	again := query(t, ts.URL, "ru", anchorQ)
	if again.Path != PathReused || again.Comm != 0 || again.MaxLoad != 0 {
		t.Fatalf("repeat anchor: %+v", again)
	}
	if fmt.Sprint(again.Output) != fmt.Sprint(first.Output) {
		t.Fatalf("reused output %v differs from anchor output %v", again.Output, first.Output)
	}
	if again.BudgetSpent != first.BudgetSpent {
		t.Fatalf("reuse charged the budget: %d → %d", first.BudgetSpent, again.BudgetSpent)
	}

	// Provably covered queries ride the warm distribution for free.
	for _, q := range []string{coveredQ1, coveredQ2, coveredQ3} {
		qr := query(t, ts.URL, "ru", q)
		if qr.Path != PathReused || qr.Comm != 0 {
			t.Fatalf("%q: path %q comm %d, want reused with zero comm", q, qr.Path, qr.Comm)
		}
	}
	// Sanity on one covered answer: D(x, y) :- R(x, y) is just R.
	d := query(t, ts.URL, "ru", coveredQ3)
	want := []string{"D(a,b)", "D(b,c)", "D(c,d)"}
	if fmt.Sprint(d.Output) != fmt.Sprint(want) {
		t.Fatalf("covered subset output %v, want %v", d.Output, want)
	}

	// The self-join is NOT covered: it must repartition and pay.
	sj := query(t, ts.URL, "ru", uncoveredQ)
	if sj.Path != PathRepartitioned || sj.Comm == 0 {
		t.Fatalf("self-join: %+v, want repartitioned with comm > 0", sj)
	}
	wantSJ := []string{"D(a,c)", "D(b,d)"}
	if fmt.Sprint(sj.Output) != fmt.Sprint(wantSJ) {
		t.Fatalf("self-join output %v, want %v", sj.Output, wantSJ)
	}

	// After the self-join repartition the anchor changed; the old
	// anchor no longer rides for free (self-join doesn't cover it)…
	back := query(t, ts.URL, "ru", anchorQ)
	if back.Path != PathRepartitioned {
		t.Fatalf("anchor after self-join: path %q, want repartitioned", back.Path)
	}
	// …but its answers are unchanged.
	if fmt.Sprint(back.Output) != fmt.Sprint(first.Output) {
		t.Fatalf("anchor output drifted across repartitions: %v vs %v", back.Output, first.Output)
	}
}

// TestReuseStrictlyCheaper pins the acceptance criterion: the same
// query script on the same data costs strictly less total communication
// with reuse enabled than with it disabled, and produces identical
// answers either way.
func TestReuseStrictlyCheaper(t *testing.T) {
	script := []string{anchorQ, coveredQ1, coveredQ2, coveredQ3, anchorQ}

	runScript := func(disable bool) (outputs []string, comm int, reused int) {
		s, ts := newTestServer(t, Config{DisableReuse: disable})
		do(t, "POST", ts.URL+"/v1/sessions", createRequest{ID: "x", Facts: transferFacts()})
		for _, q := range script {
			qr := query(t, ts.URL, "x", q)
			outputs = append(outputs, fmt.Sprint(qr.Output))
			comm += qr.Comm
		}
		return outputs, comm, s.Statz().Reused
	}

	outOn, commOn, reusedOn := runScript(false)
	outOff, commOff, reusedOff := runScript(true)

	if fmt.Sprint(outOn) != fmt.Sprint(outOff) {
		t.Fatalf("reuse changed answers:\n  on:  %v\n  off: %v", outOn, outOff)
	}
	if commOn >= commOff {
		t.Fatalf("reuse total comm %d, always-repartition %d: want strictly less", commOn, commOff)
	}
	if reusedOn != len(script)-1 {
		t.Fatalf("reuse hit %d of %d eligible queries", reusedOn, len(script)-1)
	}
	if reusedOff != 0 {
		t.Fatalf("DisableReuse still reused %d queries", reusedOff)
	}
}

// TestReuseSurvivesIrrelevantFacts pins the parking fallback: facts
// matching no anchor atom are parked, not dropped, and covered queries
// still answer correctly from the warm fragments.
func TestReuseSurvivesIrrelevantFacts(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	facts := append(transferFacts(), "Z(q, r)", "Z(r, s)") // Z matches no anchor atom
	do(t, "POST", ts.URL+"/v1/sessions", createRequest{ID: "pk", Facts: facts})

	query(t, ts.URL, "pk", anchorQ)
	qr := query(t, ts.URL, "pk", coveredQ3)
	if qr.Path != PathReused {
		t.Fatalf("covered query path %q", qr.Path)
	}
	want := []string{"D(a,b)", "D(b,c)", "D(c,d)"}
	if fmt.Sprint(qr.Output) != fmt.Sprint(want) {
		t.Fatalf("output with parked facts %v, want %v", qr.Output, want)
	}
	// The parked facts are still in the session: a gather sees them.
	status, raw := do(t, "POST", ts.URL+"/v1/query", queryRequest{
		Session: "pk", Lang: LangDatalog, Query: "W(x, y) :- Z(x, y)", Out: "W",
	})
	if status != http.StatusOK {
		t.Fatalf("gather over parked relation: %d %s", status, raw)
	}
	var g QueryResponse
	if err := json.Unmarshal(raw, &g); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if g.Count != 2 {
		t.Fatalf("parked facts lost: %v", g.Output)
	}
}

// TestCoverSizeGate pins that queries over the MaxCoverVars gate skip
// the exponential search and repartition instead.
func TestCoverSizeGate(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxCoverVars: 2, MaxCoverAtoms: 1})
	do(t, "POST", ts.URL+"/v1/sessions", createRequest{ID: "g", Facts: transferFacts()})

	query(t, ts.URL, "g", anchorQ) // 3 vars, 2 atoms: over the gate
	qr := query(t, ts.URL, "g", coveredQ1)
	if qr.Path != PathRepartitioned {
		t.Fatalf("gated pair path %q, want repartitioned (cover skipped)", qr.Path)
	}
	if s.Statz().CoverSkips == 0 {
		t.Fatal("cover gate never fired")
	}
}
