package mpcd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"mpclogic/internal/mpc"
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
)

// A snapshot is a drained server spilled to disk: one CRC-checked
// policy.EncodeStore fragment image per session plus a JSON manifest
// carrying everything the image does not — the session's dict in
// intern order (value interning is order-dependent, and byte-identical
// resumption needs identical values), the anchor query's canonical
// text, the budget ledger, and the path counters. LoadSnapshot is the
// inverse: a restarted server answers the next query of every restored
// session byte-identically to a server that never went down, which the
// e2e kill-and-resume test pins.

// snapshotVersion guards the manifest layout; bump on incompatible
// change.
const snapshotVersion = 1

// manifestName is the snapshot's index file.
const manifestName = "manifest.json"

type manifest struct {
	Version  int               `json:"version"`
	Seed     uint64            `json:"seed"`
	NextID   int               `json:"next_id"`
	Sessions []sessionManifest `json:"sessions"`
}

type sessionManifest struct {
	ID            string   `json:"id"`
	P             int      `json:"p"`
	Seed          uint64   `json:"seed"`
	Dict          []string `json:"dict"`             // names in intern order
	Anchor        string   `json:"anchor,omitempty"` // canonical CQ text
	Facts         int      `json:"facts"`
	BudgetTotal   int      `json:"budget_total"`
	BudgetSpent   int      `json:"budget_spent"`
	Queries       int      `json:"queries"`
	Reused        int      `json:"reused"`
	Repartitioned int      `json:"repartitioned"`
	Gathered      int      `json:"gathered"`
	Store         string   `json:"store"` // fragment image, relative to the snapshot dir
}

// SaveSnapshot drains the server (idempotent; every in-flight query
// finishes first, so the snapshot is quiescent) and writes it to dir.
// Sessions are written in sorted-id order and every file lands via
// tmp+rename, so a crash mid-snapshot never leaves a plausible but
// half-written manifest: the manifest is renamed into place last, and
// only after every fragment image it names.
func (s *Server) SaveSnapshot(dir string) error {
	s.Drain()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("mpcd: snapshot dir: %w", err)
	}
	s.sessMu.Lock()
	sessions := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	nextID := s.nextID
	s.sessMu.Unlock()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].ID < sessions[j].ID })

	m := manifest{Version: snapshotVersion, Seed: s.cfg.Seed, NextID: nextID}
	for _, sess := range sessions {
		sm, err := sess.snapshot(dir)
		if err != nil {
			return err
		}
		m.Sessions = append(m.Sessions, sm)
	}
	raw, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return fmt.Errorf("mpcd: encoding manifest: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(dir, manifestName), append(raw, '\n')); err != nil {
		return fmt.Errorf("mpcd: writing manifest: %w", err)
	}
	s.bump(func(st *serverStats) { st.checkpointedSess += len(sessions) })
	return nil
}

// snapshot writes one session's fragment image and returns its
// manifest entry.
func (sess *Session) snapshot(dir string) (sessionManifest, error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	ck := sess.cluster.Checkpoint()
	if ck == nil {
		// Unreachable: every session cluster is built WithCheckpoints.
		return sessionManifest{}, fmt.Errorf("mpcd: session %s has no checkpoint", sess.ID)
	}
	var buf bytes.Buffer
	if err := policy.EncodeStore(&buf, ck.Store()); err != nil {
		return sessionManifest{}, fmt.Errorf("mpcd: encoding session %s: %w", sess.ID, err)
	}
	name := "session-" + sess.ID + ".store"
	if err := writeFileAtomic(filepath.Join(dir, name), buf.Bytes()); err != nil {
		return sessionManifest{}, fmt.Errorf("mpcd: writing session %s: %w", sess.ID, err)
	}
	dictNames := make([]string, sess.dict.Len())
	for i := range dictNames {
		dictNames[i] = sess.dict.Name(rel.Value(i))
	}
	sm := sessionManifest{
		ID:            sess.ID,
		P:             sess.p,
		Seed:          sess.seed,
		Dict:          dictNames,
		Facts:         sess.facts,
		BudgetTotal:   sess.budgetTotal,
		BudgetSpent:   sess.budgetSpent,
		Queries:       sess.queries,
		Reused:        sess.reused,
		Repartitioned: sess.repartitioned,
		Gathered:      sess.gathered,
		Store:         name,
	}
	if sess.anchor != nil {
		sm.Anchor = sess.anchor.text
	}
	return sm, nil
}

func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadSnapshot builds a server from a snapshot directory written by
// SaveSnapshot, with every session warm: fragments restored into
// fault-tolerant clusters via mpc.RestoreStore, dicts re-interned in
// recorded order, anchors re-parsed so the next covered query reuses
// the restored distribution immediately. The manifest's seed overrides
// cfg's — routing hashes must match the process that wrote the
// snapshot, or the restored layout would not be the one the anchor's
// grid describes.
func LoadSnapshot(dir string, cfg Config) (*Server, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("mpcd: reading manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("mpcd: decoding manifest: %w", err)
	}
	if m.Version != snapshotVersion {
		return nil, fmt.Errorf("mpcd: snapshot version %d (this server speaks %d)", m.Version, snapshotVersion)
	}
	cfg.Seed = m.Seed
	s := New(cfg)
	s.nextID = m.NextID
	for _, sm := range m.Sessions {
		sess, err := s.restoreSession(dir, sm)
		if err != nil {
			return nil, err
		}
		if s.sessions[sess.ID] != nil {
			return nil, fmt.Errorf("mpcd: snapshot names session %q twice", sess.ID)
		}
		s.sessions[sess.ID] = sess
	}
	s.bump(func(st *serverStats) { st.restoredSessions += len(m.Sessions) })
	return s, nil
}

// restoreSession rebuilds one session from its manifest entry. The
// session is not yet published, so no locking is needed.
func (s *Server) restoreSession(dir string, sm sessionManifest) (*Session, error) {
	if !sessionIDPat.MatchString(sm.ID) {
		return nil, fmt.Errorf("mpcd: snapshot session id %q is invalid", sm.ID)
	}
	// filepath.Base forecloses traversal via a hand-edited manifest.
	raw, err := os.ReadFile(filepath.Join(dir, filepath.Base(sm.Store)))
	if err != nil {
		return nil, fmt.Errorf("mpcd: reading session %s store: %w", sm.ID, err)
	}
	store, err := policy.DecodeStore(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("mpcd: decoding session %s store: %w", sm.ID, err)
	}
	if store.NumNodes() != sm.P {
		return nil, fmt.Errorf("mpcd: session %s store has %d nodes, manifest says %d", sm.ID, store.NumNodes(), sm.P)
	}
	dict := rel.NewDict()
	for _, n := range sm.Dict {
		dict.Value(n)
	}
	sess := &Session{
		ID:            sm.ID,
		srv:           s,
		p:             sm.P,
		seed:          sm.Seed,
		dict:          dict,
		parsed:        make(map[string]*sessionQuery),
		facts:         sm.Facts,
		budgetTotal:   sm.BudgetTotal,
		budgetSpent:   sm.BudgetSpent,
		queries:       sm.Queries,
		reused:        sm.Reused,
		repartitioned: sm.Repartitioned,
		gathered:      sm.Gathered,
	}
	sess.cluster = mpc.RestoreStore(store)
	if sm.Anchor != "" {
		sq, aerr := sess.parseQuery(LangCQ, sm.Anchor, "")
		if aerr != nil {
			return nil, fmt.Errorf("mpcd: session %s anchor %q: %s", sm.ID, sm.Anchor, aerr.Message)
		}
		sess.anchor = sq
	}
	return sess, nil
}
