package mpcd

import (
	"fmt"
	"regexp"
	"sync"

	"mpclogic/internal/cq"
	"mpclogic/internal/datalog"
	"mpclogic/internal/hypercube"
	"mpclogic/internal/mpc"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

// Session is one client's long-lived state: a p-server cluster holding
// its data (distributed by the anchor query's grid once the first
// repartition has run), its own value dict, its budget ledger, and its
// parsed-query cache. Every session operation serializes on mu, so a
// session's responses are a pure function of its own request history —
// the determinism invariant the serving tests pin down.
type Session struct {
	ID string

	mu      sync.Mutex
	srv     *Server
	p       int
	seed    uint64
	dict    *rel.Dict
	cluster *mpc.Cluster
	anchor  *sessionQuery // query whose grid distributed the data; nil before the first repartition
	parsed  map[string]*sessionQuery
	facts   int

	budgetTotal int
	budgetSpent int

	queries       int
	reused        int
	repartitioned int
	gathered      int
}

// Serving-path labels carried in query responses.
const (
	PathReused        = "reused"
	PathRepartitioned = "repartitioned"
	PathGathered      = "gathered"
)

// sessionIDPat bounds client-chosen session ids: they become snapshot
// filenames, so path metacharacters are out.
var sessionIDPat = regexp.MustCompile(`^[A-Za-z0-9_-]{1,64}$`)

// Generator size cap: a create request is a few hundred bytes, so the
// generated instance is the one thing a tiny request can make huge.
const maxGenSize = 1 << 22

// parkSalt decorrelates the parking hash (facts outside the anchor's
// atoms, see gridRouter) from the grid's per-dimension hashes.
const parkSalt = 0x7061726b6d706364 // "parkmpcd"

// createSession validates the request, materializes the data, and
// installs the session round-robin across p servers — the model's
// "evenly spread, no particular scheme" starting state. The response
// is built before the session is published so its fields never race
// with a concurrent query.
func (s *Server) createSession(req *createRequest) (createResponse, *apiError) {
	if req.Generator != "" && (req.N <= 0 || req.N > maxGenSize || req.M > maxGenSize) {
		return createResponse{}, errBadRequest("generator %q needs 0 < n ≤ %d (and m ≤ %d)", req.Generator, maxGenSize, maxGenSize)
	}
	p := req.P
	if p <= 0 {
		p = s.cfg.P
	}
	if p > 1<<12 {
		return createResponse{}, errBadRequest("p = %d exceeds the per-session cluster cap %d", p, 1<<12)
	}
	budget := req.Budget
	if budget <= 0 {
		budget = s.cfg.SessionBudget
	}
	dict := rel.NewDict()
	inst, aerr := buildData(req, dict)
	if aerr != nil {
		return createResponse{}, aerr
	}
	sess := &Session{
		srv:         s,
		p:           p,
		seed:        s.cfg.Seed,
		dict:        dict,
		parsed:      make(map[string]*sessionQuery),
		facts:       inst.Len(),
		budgetTotal: budget,
	}
	sess.cluster = mpc.NewCluster(p, mpc.WithCheckpoints())
	sess.cluster.LoadRoundRobin(inst)

	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if len(s.sessions) >= s.cfg.MaxSessions {
		return createResponse{}, errSessionLimit(s.cfg.MaxSessions)
	}
	id := req.ID
	switch {
	case id == "":
		id = s.freshID()
		for s.sessions[id] != nil {
			id = s.freshID()
		}
	case !sessionIDPat.MatchString(id):
		return createResponse{}, errBadRequest("session id must match %s", sessionIDPat)
	case s.sessions[id] != nil:
		return createResponse{}, errConflict("session %q already exists", id)
	}
	sess.ID = id
	s.sessions[id] = sess
	s.bump(func(st *serverStats) { st.sessionsCreated++ })
	return createResponse{Session: id, P: p, Facts: sess.facts, Budget: budget}, nil
}

// buildData materializes a create request's data: a seeded workload
// generator, explicit symbolic facts, or both.
func buildData(req *createRequest, dict *rel.Dict) (*rel.Instance, *apiError) {
	var inst *rel.Instance
	switch req.Generator {
	case "":
		inst = rel.NewInstance()
	case "join":
		inst = workload.JoinSkewFree(req.N)
	case "join-skewed":
		inst = workload.JoinSkewed(req.N, skewOr(req.Skew, 0.1))
	case "triangle":
		inst = workload.TriangleSkewFree(req.N)
	case "triangle-skewed":
		inst = workload.TriangleSkewed(req.N, skewOr(req.Skew, 0.1))
	case "cycle":
		inst = workload.CycleGraph(req.N)
	case "path":
		inst = workload.PathGraph(req.N)
	case "random-graph":
		m := req.M
		if m <= 0 {
			m = 4 * req.N
		}
		inst = workload.RandomGraph(req.N, m, req.Seed)
	default:
		return nil, errBadRequest("unknown generator %q", req.Generator)
	}
	for _, fs := range req.Facts {
		f, err := rel.ParseFact(dict, fs)
		if err != nil {
			return nil, errParse(err)
		}
		inst.Add(f)
	}
	return inst, nil
}

func skewOr(v, def float64) float64 {
	if v <= 0 || v >= 1 {
		return def
	}
	return v
}

// deleteSession removes a live session.
func (s *Server) deleteSession(id string) *apiError {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if s.sessions[id] == nil {
		return errNotFound(id)
	}
	delete(s.sessions, id)
	s.bump(func(st *serverStats) { st.sessionsDestroyed++ })
	return nil
}

// run executes one query against the session, choosing among the three
// serving paths:
//
//   - reuse: the anchor's distribution covers the query (pc transfer),
//     so it evaluates on the warm fragments with zero communication;
//   - repartition: redistribute the data by the query's own HyperCube
//     grid — the exact per-server load is counted before anything
//     ships, and the query is rejected typed instead of run if the
//     load exceeds its budget or the shipment overdraws the session;
//   - gather: queries outside the single-round fragment (Datalog
//     programs, CQ¬) evaluate centrally on the union of the fragments,
//     charged |I| against both budgets; the distribution stays warm.
//
// A rejected query leaves the session byte-for-byte unchanged.
func (sess *Session) run(req *queryRequest) (*QueryResponse, *apiError) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sq, aerr := sess.parseQuery(req.Lang, req.Query, req.Out)
	if aerr != nil {
		return nil, aerr
	}
	qBudget := req.Budget
	if qBudget <= 0 {
		qBudget = sess.srv.cfg.QueryBudget
	}

	resp := &QueryResponse{Session: sess.ID, Query: sq.text}
	var out *rel.Instance
	switch {
	case sq.plan.gridable && sess.anchor != nil &&
		!sess.srv.cfg.DisableReuse && sess.srv.coversFor(sess.anchor, sq):
		out = sess.evalLocal(sq.cq)
		resp.Path = PathReused
		sess.reused++
		sess.srv.bump(func(st *serverStats) { st.reused++ })
	case sq.plan.gridable:
		maxLoad, total, aerr := sess.repartition(sq, qBudget)
		if aerr != nil {
			return nil, aerr
		}
		out = sess.evalLocal(sq.cq)
		resp.Path, resp.MaxLoad, resp.Comm = PathRepartitioned, maxLoad, total
		sess.repartitioned++
		sess.srv.bump(func(st *serverStats) { st.repartitioned++ })
	default:
		gathered, cost, aerr := sess.gather(sq, qBudget)
		if aerr != nil {
			return nil, aerr
		}
		out = gathered
		resp.Path, resp.MaxLoad, resp.Comm = PathGathered, cost, cost
		sess.gathered++
		sess.srv.bump(func(st *serverStats) { st.gathered++ })
	}
	sess.queries++
	resp.BudgetSpent = sess.budgetSpent
	resp.BudgetRemaining = sess.budgetTotal - sess.budgetSpent
	resp.Output = renderFacts(out, sess.dict)
	resp.Count = len(resp.Output)
	sess.srv.bump(func(st *serverStats) { st.admitted++; st.commTotal += resp.Comm })
	return resp, nil
}

// evalLocal evaluates q on every server's fragment and unions the
// results — sound and complete exactly when the current distribution
// is parallel-correct for q, which both callers guarantee: the anchor
// grid is parallel-correct for the anchor by construction, and the
// reuse path only runs when transfer says the anchor covers q.
func (sess *Session) evalLocal(q *cq.CQ) *rel.Instance {
	out := rel.NewInstance()
	for i := 0; i < sess.cluster.P(); i++ {
		out.AddAll(cq.Output(q, sess.cluster.Server(i)))
	}
	return out
}

// gridRouter wraps the query's grid with a parking fallback: facts
// matching no atom of the query are irrelevant to it but still belong
// to the session, so they park on a hashed server instead of being
// dropped (Grid.Targets routes non-matching facts nowhere). A parked
// fact can never occur in a minimal valuation of the anchor — or of
// any query the anchor covers, whose required facts are subsets of the
// anchor's — so parking preserves parallel correctness for both.
func (sess *Session) gridRouter(grid *hypercube.Grid) mpc.Router {
	p, seed := uint64(sess.p), sess.seed
	return mpc.RouterFunc(func(f rel.Fact) []int {
		if ts := grid.Targets(f); len(ts) > 0 {
			return ts
		}
		return []int{int(rel.Mix64(f.Hash()^seed^parkSalt) % p)}
	})
}

// repartition is the admission-controlled redistribution: it counts
// the exact per-server load of shipping the session's data through the
// query's grid (routing is deterministic, so the count IS the measured
// load — the defensive check at the bottom pins that equality), admits
// or rejects against the query and session budgets, and only then
// builds the new cluster. The data is re-shipped from a fresh
// round-robin layout rather than the live fragments so the measured
// load is independent of how replicated the previous anchor left them.
func (sess *Session) repartition(sq *sessionQuery, qBudget int) (maxLoad, total int, aerr *apiError) {
	shares, err := sq.plan.sharesFor(sq.cq, sess.p)
	if err != nil {
		return 0, 0, errBadRequest("no share assignment for %s on p=%d: %v", sq.text, sess.p, err)
	}
	grid, err := hypercube.NewGrid(sq.cq, shares, sess.seed)
	if err != nil {
		return 0, 0, errInternal(err) // unreachable: gridable excludes negation
	}
	router := sess.gridRouter(grid)
	union := sess.cluster.Output()
	counts := make([]int, sess.p)
	union.Each(func(f rel.Fact) bool {
		for _, d := range router.Route(f) {
			counts[d]++
			total++
		}
		return true
	})
	for _, n := range counts {
		if n > maxLoad {
			maxLoad = n
		}
	}
	if maxLoad > qBudget {
		sess.srv.bump(func(st *serverStats) { st.rejBudget++ })
		return 0, 0, errBudgetExceeded(maxLoad, qBudget)
	}
	if remaining := sess.budgetTotal - sess.budgetSpent; total > remaining {
		sess.srv.bump(func(st *serverStats) { st.rejSessionBudget++ })
		return 0, 0, errSessionBudget(total, remaining)
	}
	fresh := mpc.NewCluster(sess.p, mpc.WithCheckpoints())
	fresh.LoadRoundRobin(union)
	stats, err := fresh.RunRound(mpc.Round{Name: "repartition " + sq.text, Route: router})
	if err != nil {
		return 0, 0, errInternal(err)
	}
	if stats.MaxLoad != maxLoad || stats.TotalComm != total {
		return 0, 0, errInternal(fmt.Errorf(
			"mpcd: admission counted max load %d / comm %d but the round measured %d / %d",
			maxLoad, total, stats.MaxLoad, stats.TotalComm))
	}
	sess.cluster = fresh
	sess.anchor = sq
	sess.facts = union.Len()
	sess.budgetSpent += total
	return maxLoad, total, nil
}

// gather unions the fragments and evaluates centrally — the fallback
// for queries the single-round machinery does not cover. The model
// prices it honestly: every fact converges on one logical site, so the
// cost is |I| against both the per-query load budget and the session's
// communication budget. The distribution is left untouched.
func (sess *Session) gather(sq *sessionQuery, qBudget int) (*rel.Instance, int, *apiError) {
	union := sess.cluster.Output()
	cost := union.Len()
	if cost > qBudget {
		sess.srv.bump(func(st *serverStats) { st.rejBudget++ })
		return nil, 0, errBudgetExceeded(cost, qBudget)
	}
	if remaining := sess.budgetTotal - sess.budgetSpent; cost > remaining {
		sess.srv.bump(func(st *serverStats) { st.rejSessionBudget++ })
		return nil, 0, errSessionBudget(cost, remaining)
	}
	var out *rel.Instance
	if sq.prog != nil {
		res, err := datalog.EvalQuery(sq.prog, union, sq.outRel)
		if err != nil {
			return nil, 0, errBadRequest("datalog evaluation: %v", err)
		}
		out = res
	} else {
		out = cq.Output(sq.cq, union)
	}
	sess.budgetSpent += cost
	return out, cost, nil
}

// renderFacts renders an instance as sorted symbolic facts.
func renderFacts(out *rel.Instance, d *rel.Dict) []string {
	fs := out.SortedFacts()
	strs := make([]string, len(fs))
	for i, f := range fs {
		strs[i] = f.StringWith(d)
	}
	return strs
}

// status snapshots the session for GET /v1/sessions/{id}.
func (sess *Session) status() SessionStatus {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	st := SessionStatus{
		Session:         sess.ID,
		P:               sess.p,
		Facts:           sess.facts,
		BudgetTotal:     sess.budgetTotal,
		BudgetSpent:     sess.budgetSpent,
		BudgetRemaining: sess.budgetTotal - sess.budgetSpent,
		Queries:         sess.queries,
		Reused:          sess.reused,
		Repartitioned:   sess.repartitioned,
		Gathered:        sess.gathered,
	}
	if sess.anchor != nil {
		st.Anchor = sess.anchor.text
	}
	return st
}
