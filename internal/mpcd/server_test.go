package mpcd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// newTestServer spins up the handler on an in-process listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// do sends one JSON request and returns (status, body).
func do(t *testing.T, method, url string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal request: %v", err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("build request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp.StatusCode, raw
}

// errCode decodes the error envelope's code.
func errCode(t *testing.T, raw []byte) string {
	t.Helper()
	var e apiError
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("decode error envelope %q: %v", raw, err)
	}
	return e.Code
}

func TestCreateQueryStatusDelete(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	status, raw := do(t, "POST", ts.URL+"/v1/sessions", createRequest{
		ID:    "alpha",
		Facts: []string{"R(a, b)", "R(b, c)", "S(b, x)", "S(c, y)"},
	})
	if status != http.StatusOK {
		t.Fatalf("create: status %d body %s", status, raw)
	}
	var cr createResponse
	if err := json.Unmarshal(raw, &cr); err != nil {
		t.Fatalf("decode create response: %v", err)
	}
	if cr.Session != "alpha" || cr.Facts != 4 || cr.P != 8 {
		t.Fatalf("create response %+v", cr)
	}

	status, raw = do(t, "POST", ts.URL+"/v1/query", queryRequest{
		Session: "alpha",
		Query:   "A(x, z) :- R(x, y), S(y, z)",
	})
	if status != http.StatusOK {
		t.Fatalf("query: status %d body %s", status, raw)
	}
	var qr QueryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatalf("decode query response: %v", err)
	}
	if qr.Path != PathRepartitioned {
		t.Fatalf("first CQ should repartition, got %q", qr.Path)
	}
	want := []string{"A(a,x)", "A(b,y)"}
	if fmt.Sprint(qr.Output) != fmt.Sprint(want) {
		t.Fatalf("output %v, want %v", qr.Output, want)
	}
	if qr.Comm == 0 || qr.MaxLoad == 0 {
		t.Fatalf("repartition should cost communication: %+v", qr)
	}

	status, raw = do(t, "GET", ts.URL+"/v1/sessions/alpha", nil)
	if status != http.StatusOK {
		t.Fatalf("status: %d body %s", status, raw)
	}
	var st SessionStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	if st.Queries != 1 || st.Repartitioned != 1 || st.Anchor == "" || st.BudgetSpent != qr.Comm {
		t.Fatalf("session status %+v", st)
	}

	status, _ = do(t, "DELETE", ts.URL+"/v1/sessions/alpha", nil)
	if status != http.StatusOK {
		t.Fatalf("delete: status %d", status)
	}
	status, raw = do(t, "GET", ts.URL+"/v1/sessions/alpha", nil)
	if status != http.StatusNotFound || errCode(t, raw) != CodeNotFound {
		t.Fatalf("deleted session still answers: %d %s", status, raw)
	}
}

func TestDatalogQuery(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, raw := do(t, "POST", ts.URL+"/v1/sessions", createRequest{
		ID:    "dl",
		Facts: []string{"E(a, b)", "E(b, c)", "E(c, d)"},
	})
	var cr createResponse
	if err := json.Unmarshal(raw, &cr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	status, raw := do(t, "POST", ts.URL+"/v1/query", queryRequest{
		Session: "dl",
		Lang:    LangDatalog,
		Query:   "T(x, y) :- E(x, y)\nT(x, z) :- T(x, y), E(y, z)",
		Out:     "T",
	})
	if status != http.StatusOK {
		t.Fatalf("datalog query: %d %s", status, raw)
	}
	var qr QueryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if qr.Path != PathGathered {
		t.Fatalf("datalog should gather, got %q", qr.Path)
	}
	if qr.Count != 6 { // transitive closure of a 4-node path
		t.Fatalf("TC of a path of 4 nodes has 6 pairs, got %d: %v", qr.Count, qr.Output)
	}
	if qr.Comm != 3 {
		t.Fatalf("gather of 3 facts should cost 3, got %d", qr.Comm)
	}
}

func TestNegatedCQGathers(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	do(t, "POST", ts.URL+"/v1/sessions", createRequest{
		ID:    "neg",
		Facts: []string{"R(a, b)", "R(b, c)", "S(b)"},
	})
	status, raw := do(t, "POST", ts.URL+"/v1/query", queryRequest{
		Session: "neg",
		Query:   "A(x, y) :- R(x, y), not S(y)",
	})
	if status != http.StatusOK {
		t.Fatalf("CQ¬: %d %s", status, raw)
	}
	var qr QueryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if qr.Path != PathGathered {
		t.Fatalf("CQ¬ should gather, got %q", qr.Path)
	}
	if fmt.Sprint(qr.Output) != fmt.Sprint([]string{"A(b,c)"}) {
		t.Fatalf("output %v", qr.Output)
	}
}

func TestGeneratorSessions(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, g := range []struct {
		gen   string
		n     int
		facts int
	}{
		{"join", 64, 128},
		{"triangle", 32, 96},
		{"cycle", 16, 16},
		{"path", 16, 16}, // PathGraph(n) is the path 0→1→…→n: n edges
	} {
		status, raw := do(t, "POST", ts.URL+"/v1/sessions", createRequest{Generator: g.gen, N: g.n})
		if status != http.StatusOK {
			t.Fatalf("create %s: %d %s", g.gen, status, raw)
		}
		var cr createResponse
		if err := json.Unmarshal(raw, &cr); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if cr.Facts != g.facts {
			t.Fatalf("%s(%d): %d facts, want %d", g.gen, g.n, cr.Facts, g.facts)
		}
	}
	status, raw := do(t, "POST", ts.URL+"/v1/sessions", createRequest{Generator: "nope", N: 4})
	if status != http.StatusBadRequest || errCode(t, raw) != CodeBadRequest {
		t.Fatalf("unknown generator: %d %s", status, raw)
	}
	status, raw = do(t, "POST", ts.URL+"/v1/sessions", createRequest{Generator: "join"})
	if status != http.StatusBadRequest {
		t.Fatalf("generator without n: %d %s", status, raw)
	}
}

func TestTypedRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSessions: 2})

	// Parse error.
	do(t, "POST", ts.URL+"/v1/sessions", createRequest{ID: "rj", Facts: []string{"R(a, b)"}})
	status, raw := do(t, "POST", ts.URL+"/v1/query", queryRequest{Session: "rj", Query: "A(x :- R(x, y)"})
	if status != http.StatusBadRequest || errCode(t, raw) != CodeParse {
		t.Fatalf("parse error: %d %s", status, raw)
	}
	// Unsafe head variable is a parse-level rejection too.
	status, raw = do(t, "POST", ts.URL+"/v1/query", queryRequest{Session: "rj", Query: "A(z) :- R(x, y)"})
	if status != http.StatusBadRequest || errCode(t, raw) != CodeParse {
		t.Fatalf("unsafe query: %d %s", status, raw)
	}
	// Unknown language.
	status, raw = do(t, "POST", ts.URL+"/v1/query", queryRequest{Session: "rj", Query: "A(x) :- R(x, y)", Lang: "sql"})
	if status != http.StatusBadRequest || errCode(t, raw) != CodeBadRequest {
		t.Fatalf("unknown lang: %d %s", status, raw)
	}
	// Datalog without out.
	status, raw = do(t, "POST", ts.URL+"/v1/query", queryRequest{Session: "rj", Query: "T(x) :- E(x, y)", Lang: LangDatalog})
	if status != http.StatusBadRequest || errCode(t, raw) != CodeBadRequest {
		t.Fatalf("datalog without out: %d %s", status, raw)
	}
	// Unknown session.
	status, raw = do(t, "POST", ts.URL+"/v1/query", queryRequest{Session: "ghost", Query: "A(x) :- R(x, y)"})
	if status != http.StatusNotFound || errCode(t, raw) != CodeNotFound {
		t.Fatalf("unknown session: %d %s", status, raw)
	}
	// Missing session id.
	status, raw = do(t, "POST", ts.URL+"/v1/query", queryRequest{Query: "A(x) :- R(x, y)"})
	if status != http.StatusBadRequest {
		t.Fatalf("missing session: %d %s", status, raw)
	}
	// Duplicate id.
	status, raw = do(t, "POST", ts.URL+"/v1/sessions", createRequest{ID: "rj"})
	if status != http.StatusConflict || errCode(t, raw) != CodeConflict {
		t.Fatalf("duplicate id: %d %s", status, raw)
	}
	// Invalid id.
	status, raw = do(t, "POST", ts.URL+"/v1/sessions", createRequest{ID: "../etc"})
	if status != http.StatusBadRequest {
		t.Fatalf("invalid id: %d %s", status, raw)
	}
	// Session limit.
	do(t, "POST", ts.URL+"/v1/sessions", createRequest{ID: "rj2"})
	status, raw = do(t, "POST", ts.URL+"/v1/sessions", createRequest{ID: "rj3"})
	if status != http.StatusTooManyRequests || errCode(t, raw) != CodeSessionLimit {
		t.Fatalf("session limit: %d %s", status, raw)
	}
}

func TestMalformedBodies(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 256})

	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || errCode(t, raw) != CodeBadRequest {
		t.Fatalf("malformed JSON: %d %s", resp.StatusCode, raw)
	}

	resp, err = http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(`{"session":"x"} trailing`))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("trailing garbage: %d %s", resp.StatusCode, raw)
	}

	big := `{"session":"` + strings.Repeat("x", 1024) + `"}`
	resp, err = http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge || errCode(t, raw) != CodeBodyTooLarge {
		t.Fatalf("oversized body: %d %s", resp.StatusCode, raw)
	}
}

func TestHealthzStatzAndMethodDispatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, raw := do(t, "GET", ts.URL+"/v1/healthz", nil)
	if status != http.StatusOK {
		t.Fatalf("healthz: %d", status)
	}
	var h healthResponse
	if err := json.Unmarshal(raw, &h); err != nil || !h.OK || h.Draining {
		t.Fatalf("healthz body %s (err %v)", raw, err)
	}

	do(t, "POST", ts.URL+"/v1/sessions", createRequest{ID: "z", Facts: []string{"R(a, b)"}})
	do(t, "POST", ts.URL+"/v1/query", queryRequest{Session: "z", Query: "A(x) :- R(x, y)"})
	status, raw = do(t, "GET", ts.URL+"/v1/statz", nil)
	if status != http.StatusOK {
		t.Fatalf("statz: %d", status)
	}
	var sz StatzResponse
	if err := json.Unmarshal(raw, &sz); err != nil {
		t.Fatalf("decode statz: %v", err)
	}
	if sz.Admitted != 1 || sz.Sessions != 1 || sz.SessionsCreated != 1 || sz.Repartitioned != 1 {
		t.Fatalf("statz %+v", sz)
	}

	// Wrong method on a registered path.
	status, _ = do(t, "GET", ts.URL+"/v1/query", nil)
	if status != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/query: %d, want 405", status)
	}
}

func TestDrainRejectsTyped(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	do(t, "POST", ts.URL+"/v1/sessions", createRequest{ID: "d1", Facts: []string{"R(a, b)"}})

	status, raw := do(t, "POST", ts.URL+"/v1/drain", nil)
	if status != http.StatusOK {
		t.Fatalf("drain: %d %s", status, raw)
	}
	if !s.Draining() {
		t.Fatal("server not draining after /v1/drain")
	}
	// Every session-touching operation is now refused typed.
	status, raw = do(t, "POST", ts.URL+"/v1/query", queryRequest{Session: "d1", Query: "A(x) :- R(x, y)"})
	if status != http.StatusServiceUnavailable || errCode(t, raw) != CodeDraining {
		t.Fatalf("query during drain: %d %s", status, raw)
	}
	status, raw = do(t, "POST", ts.URL+"/v1/sessions", createRequest{ID: "d2"})
	if status != http.StatusServiceUnavailable || errCode(t, raw) != CodeDraining {
		t.Fatalf("create during drain: %d %s", status, raw)
	}
	// Drain is idempotent.
	status, _ = do(t, "POST", ts.URL+"/v1/drain", nil)
	if status != http.StatusOK {
		t.Fatalf("second drain: %d", status)
	}
	// healthz keeps answering and reports the state.
	status, raw = do(t, "GET", ts.URL+"/v1/healthz", nil)
	var h healthResponse
	if err := json.Unmarshal(raw, &h); err != nil || status != http.StatusOK || !h.Draining {
		t.Fatalf("healthz during drain: %d %s", status, raw)
	}
}

// TestPlanAndCoverCachesShared pins that the second session's identical
// query hits the server-wide plan cache rather than re-solving the LP.
func TestPlanAndCoverCachesShared(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for _, id := range []string{"c1", "c2"} {
		do(t, "POST", ts.URL+"/v1/sessions", createRequest{ID: id, Facts: []string{"R(a, b)", "S(b, c)"}})
		status, raw := do(t, "POST", ts.URL+"/v1/query", queryRequest{Session: id, Query: "A(x, z) :- R(x, y), S(y, z)"})
		if status != http.StatusOK {
			t.Fatalf("query %s: %d %s", id, status, raw)
		}
	}
	sz := s.Statz()
	if sz.PlanMisses != 1 || sz.PlanHits < 1 {
		t.Fatalf("plan cache not shared across sessions: %+v", sz)
	}
}
