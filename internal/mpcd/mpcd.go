// Package mpcd is the serving layer: a long-running query daemon over
// the MPC engine. It accepts CQ and Datalog queries over HTTP/JSON,
// keeps session-scoped clusters alive between queries, and turns the
// simulator's load accounting into admission control.
//
// The serving primitives come straight from the theory:
//
//   - A session's data lives on a p-server mpc.Cluster distributed by
//     the HyperCube share grid of the last repartitioning query (the
//     session's "anchor"). HyperCube grids are parallel-correct for
//     their query by construction, so the union of per-server local
//     evaluations is exactly the query answer.
//   - Parallel-correctness TRANSFER (Ameloot–Geck–Ketsman–Neven–
//     Schwentick; internal/pc's Covers) decides when the stored
//     distribution can be reused for the next query: if the anchor
//     covers it, the query runs locally on the warm fragments with
//     zero communication; otherwise the session repartitions and the
//     cost is charged against its budget.
//   - Admission control is MaxLoad accounting: a repartition's exact
//     per-server load is counted before anything runs (routing is
//     deterministic, so the counted load IS the measured load), and a
//     query whose load would exceed its declared budget is rejected
//     with a typed error instead of executed.
//
// Sessions are checkpointable: the cluster's PR-4 Checkpoint/Restore
// machinery plus the PR-8 policy.EncodeStore image make a drained
// server restartable with every session warm (see checkpoint.go).
//
// Determinism is the serving invariant: for a fixed session and query
// sequence, every response body is byte-identical regardless of how
// many other sessions are in flight. Responses therefore carry only
// session-scoped state; server-wide counters (cache hits, admission
// totals) live on the /v1/statz endpoint, which makes no such promise.
package mpcd

import (
	"fmt"
	"sync"
)

// Config sizes a Server. The zero value is unusable; call
// (Config).withDefaults via New, which fills the documented defaults.
type Config struct {
	// P is the default cluster width for new sessions (sessions may
	// ask for their own). Default 8.
	P int

	// Seed decouples the server's routing hash functions (share grids,
	// the parking hash for facts outside the anchor's atoms) from the
	// data. A restarted server must be given the same seed to resume
	// byte-identically; the checkpoint manifest records it. Default 1.
	Seed uint64

	// QueryBudget is the default per-query load budget: the maximum
	// number of facts any single server may receive while executing
	// the query (the model's MaxLoad). Requests may declare their own.
	// Default 1 << 20.
	QueryBudget int

	// SessionBudget is the default per-session communication budget:
	// total facts shipped across all of the session's repartitions and
	// gathers. Default 1 << 24.
	SessionBudget int

	// MaxConcurrent bounds queries executing at once; excess queries
	// wait. Default 16.
	MaxConcurrent int

	// MaxQueued bounds queries waiting for an execution slot; beyond
	// it the server answers with a typed "overloaded" rejection
	// instead of building an unbounded backlog. Default 1024.
	MaxQueued int

	// MaxBodyBytes bounds request bodies; larger requests get a typed
	// "body_too_large" rejection. Default 1 << 20.
	MaxBodyBytes int64

	// MaxSessions bounds live sessions. Default 65536.
	MaxSessions int

	// MaxCoverVars and MaxCoverAtoms gate the Covers check: deciding
	// transfer is Πᵖ₃-complete, so reuse detection only runs when both
	// the anchor and the candidate are small (which serving queries
	// are); larger queries skip straight to repartitioning. Defaults
	// 6 and 4.
	MaxCoverVars  int
	MaxCoverAtoms int

	// DisableReuse turns distribution reuse off: every CQ repartitions
	// even when the anchor covers it. This is the always-repartition
	// baseline the reuse gate compares against.
	DisableReuse bool

	// SnapshotDir, when set, is where POST /v1/checkpoint writes the
	// drained server's snapshot (see checkpoint.go). The endpoint takes
	// no path of its own — letting remote clients pick server-side
	// paths would be an arbitrary-write primitive.
	SnapshotDir string
}

func (c Config) withDefaults() Config {
	if c.P <= 0 {
		c.P = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.QueryBudget <= 0 {
		c.QueryBudget = 1 << 20
	}
	if c.SessionBudget <= 0 {
		c.SessionBudget = 1 << 24
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 16
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 65536
	}
	if c.MaxCoverVars <= 0 {
		c.MaxCoverVars = 6
	}
	if c.MaxCoverAtoms <= 0 {
		c.MaxCoverAtoms = 4
	}
	return c
}

// Server is the daemon state: sessions, the parsed-query +
// share-assignment cache, the cover-decision cache, admission control,
// and the drain barrier.
type Server struct {
	cfg Config

	// sessions is the live session table. Value interning is
	// session-scoped (each Session owns a rel.Dict), not server-scoped:
	// a shared dict's intern order would depend on which session parsed
	// first, and interned values leak into rendered facts — exactly the
	// cross-session coupling the determinism invariant forbids.
	sessMu   sync.Mutex
	sessions map[string]*Session
	nextID   int

	// plans caches the dict-independent part of parsed queries — share
	// assignments per cluster width, the cover-gate dimensions (see
	// plan.go) — and covers caches transfer decisions between canonical
	// query pairs. Both are keyed by canonical query text, which is the
	// same for every session, so one session's LP solve or Πᵖ₃ cover
	// search serves all of them.
	planMu sync.Mutex
	plans  map[string]*queryPlan
	covers map[string]bool

	// Admission control: slots bounds concurrent execution, waiting
	// bounds the backlog.
	slotMu  sync.Mutex
	waiting int
	slots   chan struct{}

	// Drain barrier: once draining, every new operation is rejected
	// typed and Drain blocks until the in-flight ones finish.
	drainMu  sync.Mutex
	draining bool
	inflight sync.WaitGroup

	stats serverStats
}

// serverStats are the server-wide observability counters reported by
// /v1/statz. They are interleaving-dependent snapshots (cache hits
// depend on which session parsed a query first), so they are NOT part
// of the deterministic response surface.
type serverStats struct {
	mu                sync.Mutex
	inFlight          int
	admitted          int
	reused            int
	repartitioned     int
	gathered          int
	rejBudget         int
	rejSessionBudget  int
	rejOverloaded     int
	rejDraining       int
	planHits          int
	planMisses        int
	coverHits         int
	coverMisses       int
	coverSkips        int
	commTotal         int
	checkpointedSess  int
	restoredSessions  int
	sessionsCreated   int
	sessionsDestroyed int
}

// New builds a server with no sessions.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		sessions: make(map[string]*Session),
		plans:    make(map[string]*queryPlan),
		covers:   make(map[string]bool),
		slots:    make(chan struct{}, cfg.MaxConcurrent),
	}
	return s
}

// Config returns the server's effective (default-filled) configuration.
func (s *Server) Config() Config { return s.cfg }

// beginOp admits one operation past the drain barrier, or reports the
// typed draining rejection. Every successful beginOp must be paired
// with endOp.
func (s *Server) beginOp() *apiError {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining {
		return errDraining()
	}
	s.inflight.Add(1)
	return nil
}

func (s *Server) endOp() { s.inflight.Done() }

// acquireSlot takes one execution slot, waiting if the server is at
// MaxConcurrent, and rejects typed once the backlog exceeds MaxQueued.
// The bounded wait keeps per-session responses deterministic under
// load: a query's result depends only on its session's history, never
// on when the slot freed up.
func (s *Server) acquireSlot() *apiError {
	select {
	case s.slots <- struct{}{}:
		return nil
	default:
	}
	s.slotMu.Lock()
	if s.waiting >= s.cfg.MaxQueued {
		s.slotMu.Unlock()
		return errOverloaded(s.cfg.MaxConcurrent, s.cfg.MaxQueued)
	}
	s.waiting++
	s.slotMu.Unlock()
	s.slots <- struct{}{}
	s.slotMu.Lock()
	s.waiting--
	s.slotMu.Unlock()
	return nil
}

func (s *Server) releaseSlot() { <-s.slots }

// Drain flips the server into draining mode and blocks until every
// in-flight operation has finished. New operations are rejected with
// the typed draining error from the moment the flag flips, so the
// barrier never strands a query: everything admitted before the flip
// completes, everything after it is refused immediately. Drain is
// idempotent and safe to call concurrently; it is terminal — a drained
// server never accepts operations again (restart from a checkpoint
// instead).
func (s *Server) Drain() {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	s.inflight.Wait()
}

// Draining reports whether the drain barrier has flipped.
func (s *Server) Draining() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.draining
}

// Sessions returns the number of live sessions.
func (s *Server) Sessions() int {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return len(s.sessions)
}

// session looks up a live session.
func (s *Server) session(id string) (*Session, *apiError) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, errNotFound(id)
	}
	return sess, nil
}

// freshID allocates the next auto-assigned session id.
func (s *Server) freshID() string {
	s.nextID++
	return fmt.Sprintf("s%d", s.nextID)
}

// bump applies one mutation to the server-wide counters under their
// lock.
func (s *Server) bump(f func(*serverStats)) {
	s.stats.mu.Lock()
	f(&s.stats)
	s.stats.mu.Unlock()
}
