package mpcd

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
)

// sessionScript is the per-client query sequence the determinism tests
// replay: it exercises all three serving paths plus a typed rejection.
func sessionScript() []queryRequest {
	return []queryRequest{
		{Query: anchorQ},
		{Query: coveredQ1},
		{Query: uncoveredQ},
		{Query: coveredQ3},
		{Query: "T(x, y) :- E(x, y)", Lang: LangDatalog, Out: "T"},
		{Query: anchorQ, Budget: 1}, // typed budget rejection, deterministic too
		{Query: anchorQ},
	}
}

// runClient creates one session and replays the script, returning the
// sha256 of the concatenated raw response bodies (status line included,
// so a rejection differing only in code still changes the digest).
func runClient(url, id string) (string, error) {
	body, err := json.Marshal(createRequest{ID: id, Facts: transferFacts()})
	if err != nil {
		return "", err
	}
	resp, err := http.Post(url+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("create %s: %d %s", id, resp.StatusCode, raw)
	}
	h := sha256.New()
	for _, q := range sessionScript() {
		q.Session = id
		body, err := json.Marshal(q)
		if err != nil {
			return "", err
		}
		resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return "", err
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		fmt.Fprintf(h, "%d\n", resp.StatusCode)
		// The digest must not depend on the session id, only on the
		// session-scoped behavior, so strip the id before hashing.
		h.Write(bytes.ReplaceAll(raw, []byte(`"`+id+`"`), []byte(`"SESSION"`)))
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// TestConcurrentByteIdentity is the serving determinism invariant: N
// clients running the same script against one server produce
// byte-identical response streams, for N in {1, 8, 64}, and every
// stream equals the single-client reference.
func TestConcurrentByteIdentity(t *testing.T) {
	// Reference digest from an isolated single-client run.
	_, tsRef := newTestServer(t, Config{})
	ref, err := runClient(tsRef.URL, "c0")
	if err != nil {
		t.Fatalf("reference client: %v", err)
	}

	for _, n := range []int{1, 8, 64} {
		t.Run(fmt.Sprintf("clients=%d", n), func(t *testing.T) {
			_, ts := newTestServer(t, Config{MaxConcurrent: 8})
			digests := make([]string, n)
			errs := make([]error, n)
			var wg sync.WaitGroup
			start := make(chan struct{})
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					<-start
					digests[i], errs[i] = runClient(ts.URL, fmt.Sprintf("c%d", i))
				}(i)
			}
			close(start)
			wg.Wait()
			for i := 0; i < n; i++ {
				if errs[i] != nil {
					t.Fatalf("client %d: %v", i, errs[i])
				}
				if digests[i] != ref {
					t.Fatalf("client %d digest %s != reference %s: responses depend on interleaving", i, digests[i], ref)
				}
			}
		})
	}
}
