package scale

import (
	"math/rand"
	"testing"

	"mpclogic/internal/cq"
	"mpclogic/internal/rel"
)

// follows builds a social graph where every account follows at most
// maxOut others, plus unrelated ballast accounts scaling with n.
func follows(n, maxOut int, seed int64) *rel.Instance {
	r := rand.New(rand.NewSource(seed))
	inst := rel.NewInstance()
	for u := 0; u < n; u++ {
		k := r.Intn(maxOut + 1)
		for j := 0; j < k; j++ {
			inst.Add(rel.NewFact("Follows", rel.Value(u), rel.Value(r.Intn(n))))
		}
	}
	return inst
}

func TestAnalyzeBounded(t *testing.T) {
	d := rel.NewDict()
	// Friends-of-friends of a fixed account: boundedly evaluable when
	// Follows has bounded out-degree.
	q := cq.MustParse(d, "H(y, z) :- Follows(0, y), Follows(y, z)")
	cons := Constraints{{Rel: "Follows", On: []int{0}, Fanout: 5}}
	plan, err := Analyze(q, cons)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 2 {
		t.Fatalf("steps = %v", plan.Steps)
	}
	// Bound: 5 (first hop) + 25 (second hop) = 30 facts, whatever |D|.
	if plan.Bound != 30 {
		t.Errorf("bound = %d, want 30", plan.Bound)
	}
}

func TestAnalyzeUnbounded(t *testing.T) {
	d := rel.NewDict()
	// No constant entry point: every account's followers — unbounded.
	q := cq.MustParse(d, "H(x, y) :- Follows(x, y)")
	cons := Constraints{{Rel: "Follows", On: []int{0}, Fanout: 5}}
	if _, err := Analyze(q, cons); err == nil {
		t.Errorf("unbounded query accepted")
	}
	// Reverse access (followers of someone) is a different constraint;
	// without it, the reversed query is unbounded too.
	q2 := cq.MustParse(d, "H(x) :- Follows(x, 0)")
	if _, err := Analyze(q2, cons); err == nil {
		t.Errorf("reverse lookup accepted without a column-1 constraint")
	}
	if _, err := Analyze(q2, Constraints{{Rel: "Follows", On: []int{1}, Fanout: 9}}); err != nil {
		t.Errorf("reverse lookup rejected with a column-1 constraint: %v", err)
	}
	neg := cq.MustParse(d, "H(x) :- R(x), not S(x)")
	if _, err := Analyze(neg, cons); err == nil {
		t.Errorf("negated query accepted")
	}
}

// The point of scale independence: as |D| grows, the facts fetched by
// the bounded plan stay under the plan's bound while the database
// grows 16-fold.
func TestExecuteScaleIndependent(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(y, z) :- Follows(0, y), Follows(y, z)")
	maxOut := 4
	cons := Constraints{{Rel: "Follows", On: []int{0}, Fanout: maxOut}}
	plan, err := Analyze(q, cons)
	if err != nil {
		t.Fatal(err)
	}
	var prevFetched int
	for _, n := range []int{1000, 4000, 16000} {
		inst := follows(n, maxOut, 7)
		if err := Verify(cons, inst); err != nil {
			t.Fatal(err)
		}
		got, fetched, err := Execute(plan, inst)
		if err != nil {
			t.Fatal(err)
		}
		want := cq.Evaluate(q, inst)
		if !got.Equal(want) {
			t.Fatalf("n=%d: bounded plan wrong (%d vs %d facts)", n, got.Len(), want.Len())
		}
		if fetched > plan.Bound {
			t.Errorf("n=%d: fetched %d > bound %d", n, fetched, plan.Bound)
		}
		prevFetched = fetched
	}
	_ = prevFetched
}

func TestVerifyCatchesViolation(t *testing.T) {
	cons := Constraints{{Rel: "Follows", On: []int{0}, Fanout: 1}}
	inst := rel.FromFacts(
		rel.NewFact("Follows", 1, 2),
		rel.NewFact("Follows", 1, 3),
	)
	if err := Verify(cons, inst); err == nil {
		t.Errorf("fanout violation accepted")
	}
}

func TestSmallRelationConstraint(t *testing.T) {
	d := rel.NewDict()
	// A dimension table declared globally small bootstraps the plan
	// without constants.
	q := cq.MustParse(d, "H(x, y) :- Dim(x), Follows(x, y)")
	cons := Constraints{
		{Rel: "Dim", On: nil, Fanout: 3},
		{Rel: "Follows", On: []int{0}, Fanout: 2},
	}
	plan, err := Analyze(q, cons)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Bound != 3+6 {
		t.Errorf("bound = %d, want 9", plan.Bound)
	}
	inst := rel.MustInstance(d, "Dim(1)", "Dim(2)", "Follows(1,5)", "Follows(2,6)", "Follows(9,9)")
	got, fetched, err := Execute(plan, inst)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(cq.Evaluate(q, inst)) {
		t.Errorf("small-relation plan wrong")
	}
	if fetched > plan.Bound {
		t.Errorf("fetched %d > bound %d", fetched, plan.Bound)
	}
}
