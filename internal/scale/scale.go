// Package scale implements a simplified form of scale independence
// (Fan, Geerts, Libkin — PODS 2014, cited in Section 6 of Neven's
// survey): some queries need only a small subset of the data, whose
// size is determined by the query's structure and the available access
// methods rather than by the size of the database.
//
// An access constraint Rel: (cols → fanout) promises that for any
// binding of the listed columns at most `fanout` tuples match (think:
// a user follows at most 5000 accounts). A conjunctive query is
// boundedly evaluable under a set of constraints when its atoms can be
// ordered so that each is fetched through a constraint whose input
// columns are already bound — by constants or by earlier atoms. The
// number of facts touched is then at most the product of the fan-outs,
// independent of |D|.
package scale

import (
	"fmt"
	"sort"
	"strings"

	"mpclogic/internal/cq"
	"mpclogic/internal/rel"
)

// Access is one access constraint: given values for columns On of
// relation Rel, at most Fanout tuples match. On may be empty, meaning
// the whole relation has at most Fanout tuples (a "small" relation).
type Access struct {
	Rel    string
	On     []int
	Fanout int
}

func (a Access) String() string {
	cols := make([]string, len(a.On))
	for i, c := range a.On {
		cols[i] = fmt.Sprint(c)
	}
	return fmt.Sprintf("%s(%s)→%d", a.Rel, strings.Join(cols, ","), a.Fanout)
}

// Constraints is the access schema: the constraints available per
// relation.
type Constraints []Access

// Step is one fetch in a bounded query plan: retrieve the tuples of
// Atom matching the bound columns via the chosen constraint.
type Step struct {
	AtomIndex int
	Via       Access
}

// Plan is a bounded evaluation plan with its worst-case fetch bound.
type Plan struct {
	Query *cq.CQ
	Steps []Step
	// Bound is the worst-case number of fetched facts: the sum over
	// steps of the product of fan-outs up to that step.
	Bound int
}

// Analyze decides bounded evaluability of a pure CQ under the access
// schema, greedily building a plan: at each point it picks an
// unfetched atom that has a usable constraint (all input columns bound
// by constants or earlier atoms), preferring the smallest fan-out.
// Greedy selection is complete here: fetching an atom only ever binds
// more variables, so usable atoms stay usable.
func Analyze(q *cq.CQ, cons Constraints) (*Plan, error) {
	if q.HasNegation() {
		return nil, fmt.Errorf("scale: bounded evaluability for positive queries")
	}
	byRel := map[string][]Access{}
	for _, a := range cons {
		byRel[a.Rel] = append(byRel[a.Rel], a)
	}
	for _, as := range byRel {
		sort.Slice(as, func(i, j int) bool { return as[i].Fanout < as[j].Fanout })
	}

	bound := map[string]bool{}
	fetched := make([]bool, len(q.Body))
	plan := &Plan{Query: q}
	width := 1 // bindings alive before the next step

	usable := func(ai int) (Access, bool) {
		a := q.Body[ai]
		for _, acc := range byRel[a.Rel] {
			ok := true
			for _, col := range acc.On {
				if col >= len(a.Args) {
					ok = false
					break
				}
				t := a.Args[col]
				if t.IsVar() && !bound[t.Var] {
					ok = false
					break
				}
			}
			if ok {
				return acc, true
			}
		}
		return Access{}, false
	}

	for steps := 0; steps < len(q.Body); steps++ {
		best, bestFan := -1, 0
		var bestAcc Access
		for ai := range q.Body {
			if fetched[ai] {
				continue
			}
			if acc, ok := usable(ai); ok && (best < 0 || acc.Fanout < bestFan) {
				best, bestFan, bestAcc = ai, acc.Fanout, acc
			}
		}
		if best < 0 {
			var stuck []string
			for ai, a := range q.Body {
				if !fetched[ai] {
					stuck = append(stuck, a.String())
				}
			}
			return nil, fmt.Errorf("scale: not boundedly evaluable; no access constraint covers %s", strings.Join(stuck, ", "))
		}
		fetched[best] = true
		plan.Steps = append(plan.Steps, Step{AtomIndex: best, Via: bestAcc})
		width *= bestAcc.Fanout
		plan.Bound += width
		for _, v := range q.Body[best].Vars() {
			bound[v] = true
		}
	}
	return plan, nil
}

// Execute runs a bounded plan on an instance, touching only the facts
// the plan fetches, and reports the result together with the number of
// facts actually fetched (which must stay within Plan.Bound as long as
// the instance honours the declared constraints).
func Execute(p *Plan, inst *rel.Instance) (*rel.Relation, int, error) {
	q := p.Query
	type partial struct {
		v cq.Valuation
	}
	cur := []partial{{v: cq.Valuation{}}}
	fetched := 0
	for _, step := range p.Steps {
		atom := q.Body[step.AtomIndex]
		src := inst.Relation(atom.Rel)
		var next []partial
		for _, pa := range cur {
			matches := fetchMatching(src, atom, step.Via, pa.v)
			fetched += len(matches)
			for _, t := range matches {
				nv, ok := extend(pa.v, atom, t)
				if ok {
					next = append(next, partial{v: nv})
				}
			}
		}
		cur = next
		if len(cur) == 0 {
			break
		}
	}
	out := rel.NewRelation(q.Head.Rel, len(q.Head.Args))
	for _, pa := range cur {
		if !pa.v.SatisfiesDiseq(q) {
			continue
		}
		h := make(rel.Tuple, len(q.Head.Args))
		for i, t := range q.Head.Args {
			if t.IsVar() {
				h[i] = pa.v[t.Var]
			} else {
				h[i] = t.Const
			}
		}
		out.Add(h)
	}
	return out, fetched, nil
}

// fetchMatching returns the tuples of src matching the atom's
// constants and the valuation's bindings on the constraint's input
// columns (an index lookup in a real system; a filtered scan counted
// as |result| fetches here).
func fetchMatching(src *rel.Relation, atom cq.Atom, via Access, v cq.Valuation) []rel.Tuple {
	if src == nil {
		return nil
	}
	want := make(map[int]rel.Value)
	for _, col := range via.On {
		t := atom.Args[col]
		if t.IsVar() {
			want[col] = v[t.Var]
		} else {
			want[col] = t.Const
		}
	}
	var out []rel.Tuple
	src.Each(func(t rel.Tuple) bool {
		for col, val := range want {
			if t[col] != val {
				return true
			}
		}
		out = append(out, t)
		return true
	})
	return out
}

// extend unifies a fetched tuple with the atom under the current
// valuation, returning the extended valuation.
func extend(v cq.Valuation, atom cq.Atom, t rel.Tuple) (cq.Valuation, bool) {
	nv := v.Clone()
	for i, arg := range atom.Args {
		if !arg.IsVar() {
			if t[i] != arg.Const {
				return nil, false
			}
			continue
		}
		if val, ok := nv[arg.Var]; ok {
			if val != t[i] {
				return nil, false
			}
			continue
		}
		nv[arg.Var] = t[i]
	}
	return nv, true
}

// Verify checks that an instance honours the declared constraints
// (useful for generators and tests).
func Verify(cons Constraints, inst *rel.Instance) error {
	for _, acc := range cons {
		r := inst.Relation(acc.Rel)
		if r == nil {
			continue
		}
		counts := map[string]int{}
		bad := false
		r.Each(func(t rel.Tuple) bool {
			key := t.Project(acc.On).Key()
			counts[key]++
			if counts[key] > acc.Fanout {
				bad = true
				return false
			}
			return true
		})
		if bad {
			return fmt.Errorf("scale: instance violates %s", acc)
		}
	}
	return nil
}
