package scale_test

import (
	"fmt"

	"mpclogic/internal/cq"
	"mpclogic/internal/rel"
	"mpclogic/internal/scale"
)

// Friends-of-friends of a fixed user is boundedly evaluable when the
// follows relation has bounded out-degree: the plan touches at most
// 5 + 25 facts regardless of how large the graph is.
func ExampleAnalyze() {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(y, z) :- Follows(0, y), Follows(y, z)")
	cons := scale.Constraints{{Rel: "Follows", On: []int{0}, Fanout: 5}}
	plan, _ := scale.Analyze(q, cons)
	fmt.Println("steps:", len(plan.Steps), "bound:", plan.Bound)

	// Without a constant entry point the query is unbounded.
	q2 := cq.MustParse(d, "H(x, y) :- Follows(x, y)")
	_, err := scale.Analyze(q2, cons)
	fmt.Println("unbounded rejected:", err != nil)
	// Output:
	// steps: 2 bound: 30
	// unbounded rejected: true
}
