package core

import (
	"testing"

	"mpclogic/internal/cq"
	"mpclogic/internal/datalog"
	"mpclogic/internal/mono"
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

func TestAnalyzerParallelCorrect(t *testing.T) {
	a := NewAnalyzer()
	q, err := a.ParseQuery("H(x, z) :- R(x, y), R(y, z), R(x, x)")
	if err != nil {
		t.Fatal(err)
	}
	ab := rel.MustFact(a.Dict, "R(a,b)")
	ba := rel.MustFact(a.Dict, "R(b,a)")
	pol := &policy.Func{
		Nodes: 2,
		Resp: func(κ policy.Node, f rel.Fact) bool {
			if κ == 0 {
				return !f.Equal(ab)
			}
			return !f.Equal(ba)
		},
		Univ: a.Dict.Values("a", "b"),
	}
	ok, why, err := a.ParallelCorrect(q, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("Example 4.3 policy should be parallel-correct: %s", why)
	}
	strong, _, err := a.StronglyCorrect(q, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strong {
		t.Errorf("PC0 should fail for Example 4.3")
	}
}

func TestAnalyzerTransfersAndContainment(t *testing.T) {
	a := NewAnalyzer()
	q3, _ := a.ParseQuery("H() :- S(x), R(x, y), T(y)")
	q1, _ := a.ParseQuery("H() :- S(x), R(x, x), T(x)")
	ok, _, err := a.Transfers(q3, q1)
	if err != nil || !ok {
		t.Errorf("Q3 should transfer to Q1: %v %v", ok, err)
	}
	ok, _, err = a.Transfers(q1, q3)
	if err != nil || ok {
		t.Errorf("Q1 should not transfer to Q3")
	}
	cont, err := a.Contained(q1, q3)
	if err != nil || !cont {
		t.Errorf("Q1 ⊆ Q3 expected")
	}
}

func TestAnalyzerStructure(t *testing.T) {
	a := NewAnalyzer()
	tri, _ := a.ParseQuery("H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	s, err := a.Structure(tri)
	if err != nil {
		t.Fatal(err)
	}
	if s.Acyclic || !s.Full || !s.Connected || !s.SelfJoinFree {
		t.Errorf("triangle structure wrong: %+v", s)
	}
	if s.Tau < 1.49 || s.Tau > 1.51 {
		t.Errorf("τ* = %v", s.Tau)
	}
	if s.LoadExponent < 0.66 || s.LoadExponent > 0.67 {
		t.Errorf("load exponent = %v", s.LoadExponent)
	}
	if s.Rho < 1.49 || s.Rho > 1.51 {
		t.Errorf("ρ* = %v", s.Rho)
	}
}

func TestChoosePlanMatrix(t *testing.T) {
	a := NewAnalyzer()
	tri, _ := a.ParseQuery("H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	chain, _ := a.ParseQuery("H(x, z) :- R(x, y), S(y, z)")
	cases := []struct {
		q                *cq.CQ
		oneRound, skewed bool
		want             Algorithm
	}{
		{tri, true, false, AlgoHyperCube},
		{tri, false, false, AlgoGYM},
		{chain, false, false, AlgoYannakakis},
		{chain, true, true, AlgoGrouping},
		{chain, true, false, AlgoHyperCube},
	}
	for _, c := range cases {
		p, err := ChoosePlan(c.q, 16, c.oneRound, c.skewed)
		if err != nil {
			t.Fatal(err)
		}
		if p.Algorithm != c.want {
			t.Errorf("plan(%v, oneRound=%v, skewed=%v) = %s, want %s",
				c.q, c.oneRound, c.skewed, p.Algorithm, c.want)
		}
	}
	neg, _ := a.ParseQuery("H(x) :- R(x), not S(x)")
	if _, err := ChoosePlan(neg, 4, true, false); err == nil {
		t.Errorf("negated query accepted by planner")
	}
}

func TestExecuteAllAlgorithms(t *testing.T) {
	a := NewAnalyzer()
	tri, _ := a.ParseQuery("H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	chain, _ := a.ParseQuery("H(a, c) :- R0(a, b), R1(b, c)")
	join, _ := a.ParseQuery("H(x, y, z) :- R(x, y), S(y, z)")

	triInst := workload.TriangleSkewFree(40)
	chainInst, _ := workload.AcyclicChain(2, 60, 0.2, 7)
	joinInst := workload.JoinSkewed(80, 0.3)

	cases := []struct {
		algo Algorithm
		q    *cq.CQ
		inst *rel.Instance
	}{
		{AlgoHyperCube, tri, triInst},
		{AlgoGYM, tri, triInst},
		{AlgoYannakakis, chain, chainInst},
		{AlgoRepartition, join, joinInst},
		{AlgoGrouping, join, joinInst},
	}
	for _, c := range cases {
		plan := &Plan{Algorithm: c.algo, Query: c.q, Servers: 9, Seed: 3}
		res, err := Execute(plan, c.inst)
		if err != nil {
			t.Fatalf("%s: %v", c.algo, err)
		}
		want := cq.Output(c.q, c.inst)
		got := res.Output.Filter(func(f rel.Fact) bool { return f.Rel == c.q.Head.Rel })
		if !got.Equal(want) {
			t.Errorf("%s: output %d facts, want %d", c.algo, got.Len(), want.Len())
		}
		if res.Rounds < 1 || res.MaxLoad < 0 {
			t.Errorf("%s: degenerate stats %+v", c.algo, res)
		}
	}
}

func TestClassifyQueryHierarchy(t *testing.T) {
	d := rel.NewDict()
	schema := rel.Schema{"E": 2}
	u := []rel.Value{0, 1, 2}

	triQ := cq.MustParse(d, "H(x, y, z) :- E(x, y), E(y, z), E(z, x)")
	got, err := ClassifyQuery(func(i *rel.Instance) *rel.Instance { return cq.Output(triQ, i) }, schema, u)
	if err != nil {
		t.Fatal(err)
	}
	if got != ClassM {
		t.Errorf("triangle class = %s, want M", got)
	}

	openQ := cq.MustParse(d, "H(x, y, z) :- E(x, y), E(y, z), not E(z, x)")
	got, err = ClassifyQuery(func(i *rel.Instance) *rel.Instance { return cq.Output(openQ, i) }, schema, u)
	if err != nil {
		t.Fatal(err)
	}
	if got != ClassMdistinct {
		t.Errorf("open triangle class = %s, want Mdistinct", got)
	}
	if StrategyFor(got) == "" || StrategyFor(ClassNotCoordinationFree) == "" {
		t.Errorf("empty strategy text")
	}
	_ = mono.Query(nil)
}

func TestClassifyProgram(t *testing.T) {
	d := rel.NewDict()
	pos := datalog.MustParse(d, "TC(x, y) :- E(x, y)\nTC(x, y) :- TC(x, z), E(z, y)")
	if ClassifyProgram(pos) != ClassM {
		t.Errorf("positive program not in M")
	}
	sp := datalog.MustParse(d, "Open(x, y, z) :- E(x, y), E(y, z), not E(z, x)")
	if ClassifyProgram(sp) != ClassMdistinct {
		t.Errorf("semi-positive program not in Mdistinct")
	}
	sc := datalog.MustParse(d, `
TC(x, y) :- E(x, y)
TC(x, y) :- TC(x, z), TC(z, y)
OUT(x, y) :- ADom(x), ADom(y), not TC(x, y)`)
	if ClassifyProgram(sc) != ClassMdisjoint {
		t.Errorf("semi-connected program not in Mdisjoint")
	}
	out, err := EvalDatalog(sc, workload.PathGraph(2), "OUT")
	if err != nil || out.Len() != 6 {
		t.Errorf("EvalDatalog: %d facts, err %v", out.Len(), err)
	}
}

func TestDetectSkew(t *testing.T) {
	inst := workload.JoinSkewed(100, 0.5)
	skew := DetectSkew(inst, 10)
	if len(skew) == 0 {
		t.Errorf("skew not detected")
	}
	free := workload.JoinSkewFree(100)
	if got := DetectSkew(free, 10); len(got) != 0 {
		t.Errorf("false skew: %v", got)
	}
}

func TestAnalyzerMinimize(t *testing.T) {
	a := NewAnalyzer()
	q, _ := a.ParseQuery("H(x) :- R(x, y), R(x, z)")
	core, err := a.Minimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(core.Body) != 1 {
		t.Errorf("core = %v", core)
	}
}
