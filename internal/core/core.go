// Package core is the library's front door: it ties the substrates —
// conjunctive queries, distribution policies, the parallel-correctness
// framework, the MPC simulator and its single-/multi-round algorithms,
// Datalog, monotonicity analysis, and transducer networks — into the
// two workflows the paper studies:
//
//   - Analyzer: static reasoning about one-round parallel evaluation —
//     parallel-correctness, transfer, containment, structural facts
//     (τ*, acyclicity), per Sections 3–4.
//   - Planner: choosing and executing an MPC evaluation plan for a
//     conjunctive query (HyperCube, repartition/grouping join,
//     Yannakakis, GYM), per Section 3.
//   - CALM: classifying queries/programs in the monotonicity hierarchy
//     of Figure 2 and running the matching coordination-free strategy
//     on an asynchronous transducer network, per Section 5.
package core

import (
	"fmt"

	"mpclogic/internal/cq"
	"mpclogic/internal/datalog"
	"mpclogic/internal/mono"
	"mpclogic/internal/pc"
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
)

// Analyzer bundles the static-analysis entry points. A single Dict
// scopes all symbolic names used by one analysis session.
type Analyzer struct {
	Dict *rel.Dict
}

// NewAnalyzer returns an analyzer with a fresh name dictionary.
func NewAnalyzer() *Analyzer { return &Analyzer{Dict: rel.NewDict()} }

// ParseQuery parses a conjunctive query in rule syntax.
func (a *Analyzer) ParseQuery(src string) (*cq.CQ, error) {
	return cq.Parse(a.Dict, src)
}

// ParallelCorrect decides whether the one-round evaluation of q under
// pol is correct on all instances over the universe (Proposition 4.6),
// returning a human-readable explanation.
func (a *Analyzer) ParallelCorrect(q *cq.CQ, pol policy.Policy, universe []rel.Value) (bool, string, error) {
	ok, w, err := pc.ParallelCorrect(q, pol, universe)
	if err != nil {
		return false, "", err
	}
	if ok {
		return true, "every minimal valuation's required facts meet at some node (PC1)", nil
	}
	return false, w.String(), nil
}

// StronglyCorrect decides the stronger (PC0) condition.
func (a *Analyzer) StronglyCorrect(q *cq.CQ, pol policy.Policy, universe []rel.Value) (bool, string, error) {
	ok, w, err := pc.StronglySaturates(q, pol, universe)
	if err != nil {
		return false, "", err
	}
	if ok {
		return true, "every valuation's required facts meet at some node (PC0)", nil
	}
	return false, w.String(), nil
}

// Transfers decides parallel-correctness transfer from q to qp via the
// covers characterization (Proposition 4.13).
func (a *Analyzer) Transfers(q, qp *cq.CQ) (bool, string, error) {
	ok, w, err := pc.Transfers(q, qp)
	if err != nil {
		return false, "", err
	}
	if ok {
		return true, "Q covers Q′: every minimal valuation of Q′ is dominated", nil
	}
	return false, w.String(), nil
}

// Contained decides classic containment for pure CQs.
func (a *Analyzer) Contained(q, qp *cq.CQ) (bool, error) { return cq.Contained(q, qp) }

// Minimize returns the core of a pure CQ (fewest-atom equivalent).
func (a *Analyzer) Minimize(q *cq.CQ) (*cq.CQ, error) { return cq.Minimize(q) }

// Structure summarizes the structural properties driving algorithm
// choice and load bounds.
type Structure struct {
	Full         bool
	Boolean      bool
	SelfJoinFree bool
	Connected    bool
	Acyclic      bool
	// Tau is the optimal fractional edge packing value τ*; the
	// HyperCube load on skew-free data is O(m/p^{1/τ*}).
	Tau float64
	// Rho is the fractional edge cover number ρ* (AGM exponent).
	Rho float64
	// LoadExponent is 1/τ*: load = m/p^{LoadExponent}.
	LoadExponent float64
}

// Structure computes the structural report for q.
func (a *Analyzer) Structure(q *cq.CQ) (Structure, error) {
	s := Structure{
		Full:         q.IsFull(),
		Boolean:      q.IsBoolean(),
		SelfJoinFree: q.SelfJoinFree(),
		Connected:    cq.IsConnected(q),
		Acyclic:      cq.IsAcyclic(q),
	}
	pack, err := cq.FractionalEdgePacking(q)
	if err != nil {
		return s, err
	}
	s.Tau = pack.Value
	s.LoadExponent = 1 / pack.Value
	cover, err := cq.FractionalEdgeCover(q)
	if err != nil {
		return s, err
	}
	s.Rho = cover.Value
	return s, nil
}

// CALMClass is a position in the Figure 2 hierarchy.
type CALMClass string

// The monotonicity classes of Section 5.2, plus NotCoordinationFree
// for queries outside Mdisjoint.
const (
	ClassM                   CALMClass = "M"
	ClassMdistinct           CALMClass = "Mdistinct"
	ClassMdisjoint           CALMClass = "Mdisjoint"
	ClassNotCoordinationFree CALMClass = "coordination-required"
)

// ClassifyQuery places a black-box query in the hierarchy by bounded
// model checking over the given schema and universe (exact relative to
// the bound). It returns the strongest class that holds.
func ClassifyQuery(q mono.Query, schema rel.Schema, universe []rel.Value) (CALMClass, error) {
	if rep, err := mono.IsMonotone(q, schema, universe); err != nil {
		return "", err
	} else if rep.Holds {
		return ClassM, nil
	}
	if rep, err := mono.IsDomainDistinctMonotone(q, schema, universe); err != nil {
		return "", err
	} else if rep.Holds {
		return ClassMdistinct, nil
	}
	if rep, err := mono.IsDomainDisjointMonotone(q, schema, universe); err != nil {
		return "", err
	} else if rep.Holds {
		return ClassMdisjoint, nil
	}
	return ClassNotCoordinationFree, nil
}

// ClassifyProgram places a Datalog program syntactically (effective
// syntax, Section 5.3): positive → M, semi-positive → Mdistinct,
// semi-connected stratified → Mdisjoint.
func ClassifyProgram(p *datalog.Program) CALMClass {
	switch p2 := datalog.Classify(p); p2.MonotonicityClass() {
	case "M":
		return ClassM
	case "Mdistinct":
		return ClassMdistinct
	case "Mdisjoint":
		return ClassMdisjoint
	default:
		return ClassNotCoordinationFree
	}
}

// StrategyFor describes the coordination-free evaluation strategy the
// hierarchy prescribes for a class (Theorems 5.3, 5.8, 5.12).
func StrategyFor(c CALMClass) string {
	switch c {
	case ClassM:
		return "naive broadcast: output Q(state) as data arrives (Theorem 5.3; F0 = M)"
	case ClassMdistinct:
		return "policy-aware broadcast: output Q(state|C) for distinct-complete C (Theorem 5.8; F1 = Mdistinct)"
	case ClassMdisjoint:
		return "domain-guided pulls: output Q on unions of complete components (Theorem 5.12; F2 = Mdisjoint)"
	default:
		return "no coordination-free strategy exists; use an explicit coordination protocol"
	}
}

// EvalDatalog runs a stratified Datalog program centrally.
func EvalDatalog(p *datalog.Program, edb *rel.Instance, outRel string) (*rel.Instance, error) {
	return datalog.EvalQuery(p, edb, outRel)
}

// fmtErr helps commands render consistent errors.
func fmtErr(context string, err error) error {
	return fmt.Errorf("core: %s: %w", context, err)
}
