package core

import (
	"fmt"

	"mpclogic/internal/cq"
	"mpclogic/internal/gym"
	"mpclogic/internal/hypercube"
	"mpclogic/internal/mpc"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

// Algorithm names the MPC evaluation strategies the planner chooses
// between (Section 3).
type Algorithm string

// The implemented strategies.
const (
	AlgoHyperCube   Algorithm = "hypercube"   // one round, Shares grid
	AlgoRepartition Algorithm = "repartition" // one round, hash join
	AlgoGrouping    Algorithm = "grouping"    // one round, skew-proof
	AlgoYannakakis  Algorithm = "yannakakis"  // multi-round, acyclic
	AlgoGYM         Algorithm = "gym"         // multi-round, cyclic
)

// Plan is a chosen strategy plus its rationale.
type Plan struct {
	Algorithm Algorithm
	Rationale string
	Query     *cq.CQ
	Servers   int
	Seed      uint64
	// WCOJ runs the worst-case-optimal generic join as the local
	// computation of the HyperCube round — the pairing of
	// Chu-Balazinska-Suciu's study.
	WCOJ bool
}

// ChoosePlan picks an algorithm for evaluating q on p servers,
// following the guidance the paper surveys: acyclic queries get
// Yannakakis (intermediates bounded); cyclic ones get HyperCube when
// one round is wanted or the output is expected large, GYM otherwise;
// binary joins under known skew get the grouping strategy.
func ChoosePlan(q *cq.CQ, p int, oneRound, skewed bool) (*Plan, error) {
	if q.HasNegation() {
		return nil, fmt.Errorf("core: MPC planner handles positive CQs")
	}
	plan := &Plan{Query: q, Servers: p, Seed: 0x9e3779b9}
	switch {
	case oneRound && skewed && len(q.Body) == 2 && q.SelfJoinFree():
		plan.Algorithm = AlgoGrouping
		plan.Rationale = "binary join under skew: value-oblivious grouping keeps load at m/√p (Example 3.1(1b))"
	case oneRound:
		plan.Algorithm = AlgoHyperCube
		plan.WCOJ = len(q.Body) > 2 && !q.HasDiseq()
		plan.Rationale = "single round requested: HyperCube is worst-case optimal at m/p^{1/τ*} on skew-free data (Section 3.1)"
	case cq.IsAcyclic(q):
		plan.Algorithm = AlgoYannakakis
		plan.Rationale = "acyclic query: semijoin reduction bounds intermediates by the output (Section 3.2)"
	default:
		plan.Algorithm = AlgoGYM
		plan.Rationale = "cyclic query, multiple rounds allowed: GYM evaluates a tree decomposition (Section 3.2)"
	}
	return plan, nil
}

// Result of an executed plan.
type Result struct {
	Output    *rel.Instance
	Rounds    int
	MaxLoad   int
	TotalComm int
}

// Execute runs the plan on the instance and reports the MPC cost
// profile.
func Execute(plan *Plan, inst *rel.Instance) (*Result, error) {
	switch plan.Algorithm {
	case AlgoHyperCube:
		g, err := hypercube.NewOptimalGrid(plan.Query, plan.Servers, plan.Seed)
		if err != nil {
			return nil, fmtErr("hypercube", err)
		}
		c := mpc.NewCluster(g.P())
		c.LoadRoundRobin(inst)
		round := hypercube.HyperCubeRound(g)
		if plan.WCOJ {
			q := plan.Query
			round.Compute = func(_ int, local *rel.Instance) *rel.Instance {
				out := rel.NewInstance()
				res, err := cq.GenericJoin(q, local)
				if err != nil {
					out.EnsureRelation(q.Head.Rel, len(q.Head.Args))
					return out
				}
				out.SetRelation(res)
				return out
			}
		}
		if err := c.Run(round); err != nil {
			return nil, fmtErr("hypercube", err)
		}
		return resultOf(c), nil
	case AlgoRepartition:
		r, err := hypercube.RepartitionJoin(plan.Query, plan.Servers, plan.Seed)
		if err != nil {
			return nil, fmtErr("repartition", err)
		}
		c := mpc.NewCluster(plan.Servers)
		c.LoadRoundRobin(inst)
		if err := c.Run(r); err != nil {
			return nil, fmtErr("repartition", err)
		}
		return resultOf(c), nil
	case AlgoGrouping:
		r, err := hypercube.GroupingJoin(plan.Query, plan.Servers, plan.Seed)
		if err != nil {
			return nil, fmtErr("grouping", err)
		}
		c := mpc.NewCluster(plan.Servers)
		c.LoadRoundRobin(inst)
		if err := c.Run(r); err != nil {
			return nil, fmtErr("grouping", err)
		}
		return resultOf(c), nil
	case AlgoYannakakis:
		c, out, err := gym.DistributedYannakakis(plan.Query, plan.Servers, inst, plan.Seed)
		if err != nil {
			return nil, fmtErr("yannakakis", err)
		}
		return &Result{Output: out, Rounds: c.Rounds(), MaxLoad: c.MaxLoad(), TotalComm: c.TotalComm()}, nil
	case AlgoGYM:
		c, out, _, err := gym.GYM(plan.Query, plan.Servers, inst, plan.Seed)
		if err != nil {
			return nil, fmtErr("gym", err)
		}
		return &Result{Output: out, Rounds: c.Rounds(), MaxLoad: c.MaxLoad(), TotalComm: c.TotalComm()}, nil
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", plan.Algorithm)
	}
}

func resultOf(c *mpc.Cluster) *Result {
	return &Result{Output: c.Output(), Rounds: c.Rounds(), MaxLoad: c.MaxLoad(), TotalComm: c.TotalComm()}
}

// DetectSkew reports whether any relation of the instance has a value
// whose frequency in some column exceeds m/threshFrac (heavy hitters,
// Section 3). It returns the offending values per relation/column.
func DetectSkew(inst *rel.Instance, threshold int) map[string][]rel.Value {
	out := map[string][]rel.Value{}
	for _, name := range inst.RelationNames() {
		r := inst.Relation(name)
		for col := 0; col < r.Arity; col++ {
			if hh := workload.HeavyHitters(inst, name, col, threshold); len(hh) > 0 {
				key := fmt.Sprintf("%s[%d]", name, col)
				out[key] = hh
			}
		}
	}
	return out
}
