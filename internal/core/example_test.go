package core_test

import (
	"fmt"

	"mpclogic/internal/core"
	"mpclogic/internal/workload"
)

// The façade in one breath: analyze a query's structure, let the
// planner pick an algorithm, execute on the MPC simulator.
func ExampleChoosePlan() {
	a := core.NewAnalyzer()
	q, _ := a.ParseQuery("H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	s, _ := a.Structure(q)
	plan, _ := core.ChoosePlan(q, 64, true, false)
	res, _ := core.Execute(plan, workload.TriangleSkewFree(1000))
	fmt.Printf("τ*=%.1f algo=%s rounds=%d triangles=%d\n",
		s.Tau, plan.Algorithm, res.Rounds, res.Output.Len())
	// Output: τ*=1.5 algo=hypercube rounds=1 triangles=1000
}

// Classify a query in the CALM hierarchy and get the prescribed
// coordination-free strategy.
func ExampleStrategyFor() {
	fmt.Println(core.StrategyFor(core.ClassM))
	// Output: naive broadcast: output Q(state) as data arrives (Theorem 5.3; F0 = M)
}
