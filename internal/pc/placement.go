package pc

import (
	"fmt"

	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
)

// Receiver-side placement verification. The parallel-correctness
// framework reasons about *where facts are allowed to live*: a
// distribution policy P names, for every fact, the nodes responsible
// for it. That makes a fact sitting on a node outside its
// responsibility set a checkable integrity violation — the static
// counterpart of the MPC engine's per-round routing verification — and
// the check below is what the network runtimes run against hand-loaded
// or recovered horizontal fragments before trusting them.

// PlacementViolation is one node holding a fact its policy never
// placed there. Fact is the Fact.Less-minimal offender on that node,
// so repeated runs over the same illegal distribution accuse
// deterministically.
type PlacementViolation struct {
	Node policy.Node
	Fact rel.Fact
}

func (v *PlacementViolation) Error() string {
	return fmt.Sprintf("pc: node %d holds %v, which its distribution policy does not place there", v.Node, v.Fact)
}

// VerifyPlacement checks a horizontal distribution against its
// declared policy: every fact in parts[κ] must have κ in its
// responsibility set. It returns one violation per offending node —
// the Fact.Less-minimal illegal fact, nodes in ascending order — or
// nil when the distribution conforms. Completeness (every fact placed
// *somewhere*) is Distribute's job, not the receiver's: a node can
// only vouch for what it holds.
func VerifyPlacement(pol policy.Policy, parts []*rel.Instance) []*PlacementViolation {
	var out []*PlacementViolation
	n := pol.NumNodes()
	for κ := 0; κ < n && κ < len(parts); κ++ {
		if parts[κ] == nil {
			continue
		}
		var worst *rel.Fact
		parts[κ].Each(func(f rel.Fact) bool {
			if pol.Responsible(policy.Node(κ), f) {
				return true
			}
			if worst == nil || f.Less(*worst) {
				g := f.Clone()
				worst = &g
			}
			return true
		})
		if worst != nil {
			out = append(out, &PlacementViolation{Node: policy.Node(κ), Fact: *worst})
		}
	}
	return out
}
