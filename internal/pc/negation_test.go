package pc

import (
	"testing"

	"mpclogic/internal/cq"
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
)

// For CQ¬, parallel-correctness = soundness ∧ completeness, and both
// can fail independently (Section 4.1, Theorem 4.9 discussion).
func TestNegSoundnessCanFail(t *testing.T) {
	d := rel.NewDict()
	// Q: H(x) :- R(x), not S(x). Policy: R everywhere, S nowhere.
	// A node deriving H(a) locally cannot see S(a) → unsound.
	q := cq.MustParse(d, "H(x) :- R(x), not S(x)")
	p := &policy.Func{
		Nodes: 2,
		Resp: func(κ policy.Node, f rel.Fact) bool {
			return f.Rel == "R"
		},
	}
	rep, err := ParallelCorrectNegBounded(q, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sound {
		t.Errorf("expected soundness failure")
	}
	if rep.SoundCex == nil {
		t.Fatalf("no soundness counterexample")
	}
	// Verify the counterexample.
	i := rep.SoundCex
	if DistributedEval(q, p, i).SubsetOf(cq.Output(q, i)) {
		t.Errorf("returned counterexample does not violate soundness")
	}
	if rep.Correct() {
		t.Errorf("Correct() true despite unsoundness")
	}
}

func TestNegCompletenessCanFail(t *testing.T) {
	d := rel.NewDict()
	_ = d
	// Policy: R-facts to node 0 or 1 by parity of the value, S
	// replicated. A fact R(v) with odd v lands on node 1 only; the
	// derivation is complete. To break completeness, drop R entirely.
	q := cq.MustParse(d, "H(x) :- R(x), not S(x)")
	p := &policy.Func{
		Nodes: 2,
		Resp: func(κ policy.Node, f rel.Fact) bool {
			return f.Rel == "S" // R-facts are lost
		},
	}
	rep, err := ParallelCorrectNegBounded(q, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complete {
		t.Errorf("expected completeness failure")
	}
	if rep.CompleteCex == nil {
		t.Fatalf("no completeness counterexample")
	}
	// Losing facts cannot create spurious derivations here: local
	// instances are subsets and H(x):-R(x),¬S(x) with S replicated is
	// sound (negated fact always visible).
	if !rep.Sound {
		t.Errorf("expected soundness to hold")
	}
}

func TestNegCorrectUnderReplication(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- E(x, y), E(y, z), not E(z, x)")
	p := &policy.Replicate{Nodes: 3}
	rep, err := ParallelCorrectNegBounded(q, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Correct() {
		t.Errorf("full replication should be parallel-correct for any query: %v", rep)
	}
	_ = d
}

func TestUCQNegBounded(t *testing.T) {
	d := rel.NewDict()
	u := cq.MustParseUCQ(d, "H(x) :- R(x), not S(x)\nH(x) :- T(x)")
	p := &policy.Replicate{Nodes: 2}
	rep, err := ParallelCorrectUCQNegBounded(u, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Correct() {
		t.Errorf("replication incorrect for UCQ¬: %v", rep)
	}
	// Losing T breaks completeness of the union.
	p2 := &policy.Func{
		Nodes: 2,
		Resp: func(κ policy.Node, f rel.Fact) bool {
			return f.Rel != "T"
		},
	}
	rep2, err := ParallelCorrectUCQNegBounded(u, p2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Complete {
		t.Errorf("expected completeness failure when T-facts are lost")
	}
}

// For monotone CQs (no negation), distributing never creates facts:
// [Q,P](I) ⊆ Q(I) always — soundness is free, matching the paper's
// remark that only CQ¬ needs the soundness side.
func TestMonotoneAlwaysSound(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, z) :- R(x, y), R(y, z)")
	p := &policy.Hash{Nodes: 3}
	i := rel.MustInstance(d, "R(a,b)", "R(b,c)", "R(c,d)", "R(d,a)")
	if !DistributedEval(q, p, i).SubsetOf(cq.Output(q, i)) {
		t.Errorf("monotone query produced spurious facts under distribution")
	}
}
