package pc

import (
	"math/rand"
	"testing"

	"mpclogic/internal/cq"
	"mpclogic/internal/rel"
)

func figure1Queries(d *rel.Dict) []*cq.CQ {
	return []*cq.CQ{
		cq.MustParse(d, "H() :- S(x), R(x, x), T(x)"), // Q1
		cq.MustParse(d, "H() :- R(x, x), T(x)"),       // Q2
		cq.MustParse(d, "H() :- S(x), R(x, y), T(y)"), // Q3
		cq.MustParse(d, "H() :- R(x, y), T(y)"),       // Q4
	}
}

// Figure 1(a) of the paper: parallel-correctness transfer among the
// queries of Example 4.11. The transfer edges are Q3→Q4, Q3→Q1,
// Q4→Q2, Q1→Q2 (plus reflexivity and the implied Q3→Q2). This matches
// the paper's orthogonality discussion: Q3 vs Q4 agree with
// containment, Q4 vs Q2 run opposite to containment, Q3→Q2 holds with
// no containment, and Q1 ⊆ Q4 holds with no transfer.
func TestFigure1Transfer(t *testing.T) {
	d := rel.NewDict()
	qs := figure1Queries(d)

	got := [4][4]bool{}
	for i, qi := range qs {
		for j, qj := range qs {
			ok, _, err := Transfers(qi, qj)
			if err != nil {
				t.Fatal(err)
			}
			got[i][j] = ok
		}
	}

	// Expected matrix (source row → target column).
	want := [4][4]bool{
		{true, true, false, false},  // Q1 → Q1, Q2
		{false, true, false, false}, // Q2 → Q2
		{true, true, true, true},    // Q3 → all
		{false, true, false, true},  // Q4 → Q2, Q4
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Errorf("transfer Q%d → Q%d: got %v, want %v", i+1, j+1, got[i][j], want[i][j])
			}
		}
	}
}

// Transfer is reflexive and transitive (it is defined by implication
// over all policies).
func TestTransferPreorder(t *testing.T) {
	d := rel.NewDict()
	qs := figure1Queries(d)
	n := len(qs)
	m := make([][]bool, n)
	for i := range m {
		m[i] = make([]bool, n)
		for j := range m[i] {
			ok, _, err := Transfers(qs[i], qs[j])
			if err != nil {
				t.Fatal(err)
			}
			m[i][j] = ok
		}
		if !m[i][i] {
			t.Errorf("transfer not reflexive at Q%d", i+1)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if m[i][j] && m[j][k] && !m[i][k] {
					t.Errorf("transfer not transitive: Q%d→Q%d→Q%d", i+1, j+1, k+1)
				}
			}
		}
	}
}

// Orthogonality with containment (the point of Figure 1): all four
// combinations of (transfer, containment) occur among Q1–Q4.
func TestFigure1Orthogonality(t *testing.T) {
	d := rel.NewDict()
	qs := figure1Queries(d)
	type combo struct{ transfer, contained bool }
	seen := map[combo][2]int{}
	for i, qi := range qs {
		for j, qj := range qs {
			if i == j {
				continue
			}
			tr, _, err := Transfers(qi, qj)
			if err != nil {
				t.Fatal(err)
			}
			// Compare with containment Qi ⊆ Qj.
			cn, err := cq.Contained(qi, qj)
			if err != nil {
				t.Fatal(err)
			}
			seen[combo{tr, cn}] = [2]int{i + 1, j + 1}
		}
	}
	for _, c := range []combo{{true, true}, {true, false}, {false, true}, {false, false}} {
		if _, ok := seen[c]; !ok {
			t.Errorf("combination transfer=%v contained=%v not witnessed; Figure 1 says it should be", c.transfer, c.contained)
		}
	}
}

// Proposition 4.13 validated semantically: for random finite policies,
// whenever Q is parallel-correct and Q covers Q′, Q′ is parallel-
// correct too; and when covers fails, some policy separates them.
func TestPropCoversMatchesSemantics(t *testing.T) {
	d := rel.NewDict()
	qs := figure1Queries(d)
	universe := []rel.Value{0, 1}
	r := rand.New(rand.NewSource(31))

	for i, q := range qs {
		for j, qp := range qs {
			cov, _, err := Covers(q, qp)
			if err != nil {
				t.Fatal(err)
			}
			schema := rel.Schema{"R": 2, "S": 1, "T": 1}
			foundSep := false
			for trial := 0; trial < 120; trial++ {
				p := randomFinitePolicy(r, schema, universe, 2)
				okQ, _, err := Saturates(q, p, universe)
				if err != nil {
					t.Fatal(err)
				}
				if !okQ {
					continue
				}
				okQp, _, err := Saturates(qp, p, universe)
				if err != nil {
					t.Fatal(err)
				}
				if cov && !okQp {
					t.Fatalf("Q%d covers Q%d but a policy has Q%d correct and Q%d not", i+1, j+1, i+1, j+1)
				}
				if !okQp {
					foundSep = true
				}
			}
			_ = foundSep // separation need not be witnessed on tiny universes
		}
	}
}

// Full queries transfer to each other iff body containment holds in
// the right direction; spot-check the tractable-case intuition
// ([14,15] lower the complexity for full queries).
func TestTransferFullQueries(t *testing.T) {
	d := rel.NewDict()
	join := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z)")
	tri := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	// Every triangle valuation's facts strictly include a join
	// valuation's facts, so triangle-correctness transfers to the join…
	ok, _, err := Transfers(tri, join)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("triangle should transfer to binary join")
	}
	// …but not the other way: join bodies never contain a T-fact.
	ok, _, err = Transfers(join, tri)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("binary join should not transfer to triangle")
	}
	ok, _, err = Transfers(join, join)
	if err != nil || !ok {
		t.Errorf("self-transfer failed: %v %v", ok, err)
	}
}

func TestCoversRejectsNegation(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x) :- R(x), not S(x)")
	q2 := cq.MustParse(d, "H(x) :- R(x)")
	if _, _, err := Covers(q, q2); err == nil {
		t.Errorf("negation accepted by Covers")
	}
}

func TestCoverWitnessString(t *testing.T) {
	d := rel.NewDict()
	q1 := cq.MustParse(d, "H() :- S(x), R(x, x), T(x)")
	q4 := cq.MustParse(d, "H() :- R(x, y), T(y)")
	ok, w, err := Transfers(q1, q4)
	if err != nil {
		t.Fatal(err)
	}
	if ok || w == nil {
		t.Fatalf("expected failure with witness")
	}
	if w.String() == "" {
		t.Errorf("empty witness string")
	}
}

// UCQ transfer reduces to CQ transfer on singletons and handles
// genuinely union phenomena: a union can transfer where no single
// disjunct does.
func TestTransfersUCQ(t *testing.T) {
	d := rel.NewDict()
	// Singleton unions agree with the CQ decision.
	qs := figure1Queries(d)
	for i, qi := range qs {
		for j, qj := range qs {
			ui := &cq.UCQ{Disjuncts: []*cq.CQ{qi}}
			uj := &cq.UCQ{Disjuncts: []*cq.CQ{qj}}
			got, _, err := TransfersUCQ(ui, uj)
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := Transfers(qi, qj)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("UCQ transfer Q%d→Q%d = %v, CQ says %v", i+1, j+1, got, want)
			}
		}
	}

	// A union target: transfer must cover EVERY disjunct's minimal
	// valuations. Q3 covers Q1 and Q2 individually, so it covers their
	// union.
	u3 := &cq.UCQ{Disjuncts: []*cq.CQ{qs[2]}}
	u12 := &cq.UCQ{Disjuncts: []*cq.CQ{qs[0], qs[1]}}
	ok, _, err := TransfersUCQ(u3, u12)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("Q3 should transfer to Q1 ∪ Q2")
	}
	// Q1 covers Q2 but not Q3, so Q1 does not cover Q2 ∪ Q3.
	u1 := &cq.UCQ{Disjuncts: []*cq.CQ{qs[0]}}
	u23 := &cq.UCQ{Disjuncts: []*cq.CQ{qs[1], qs[2]}}
	ok, w, err := TransfersUCQ(u1, u23)
	if err != nil {
		t.Fatal(err)
	}
	if ok || w == nil {
		t.Errorf("Q1 should not transfer to Q2 ∪ Q3")
	}

	// A union source can cover a target no single disjunct covers:
	// target Q2 ∪ Q... use: source = Q1 ∪ Q4 versus target Q2 ∪ Q4:
	// Q1 covers Q2 and Q4 covers Q4.
	u14 := &cq.UCQ{Disjuncts: []*cq.CQ{qs[0], qs[3]}}
	u24 := &cq.UCQ{Disjuncts: []*cq.CQ{qs[1], qs[3]}}
	ok, _, err = TransfersUCQ(u14, u24)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("Q1 ∪ Q4 should transfer to Q2 ∪ Q4")
	}

	neg := cq.MustParse(d, "H(x) :- R(x, y), not S(x)")
	if _, _, err := TransfersUCQ(&cq.UCQ{Disjuncts: []*cq.CQ{neg}}, u1); err == nil {
		t.Errorf("negated union accepted")
	}
}

// Semantic cross-check of UCQ transfer: whenever the union-source is
// parallel-correct under a random policy, the union-target is too.
func TestPropUCQTransferSemantics(t *testing.T) {
	d := rel.NewDict()
	qs := figure1Queries(d)
	u3 := &cq.UCQ{Disjuncts: []*cq.CQ{qs[2]}}
	u12 := &cq.UCQ{Disjuncts: []*cq.CQ{qs[0], qs[1]}}
	cov, _, err := TransfersUCQ(u3, u12)
	if err != nil {
		t.Fatal(err)
	}
	if !cov {
		t.Fatal("precondition: Q3 transfers to Q1 ∪ Q2")
	}
	universe := []rel.Value{0, 1}
	schema := rel.Schema{"R": 2, "S": 1, "T": 1}
	r := rand.New(rand.NewSource(15))
	for trial := 0; trial < 60; trial++ {
		pol := randomFinitePolicy(r, schema, universe, 2)
		srcOK, _, err := SaturatesUCQ(u3, pol, universe)
		if err != nil {
			t.Fatal(err)
		}
		if !srcOK {
			continue
		}
		dstOK, _, err := SaturatesUCQ(u12, pol, universe)
		if err != nil {
			t.Fatal(err)
		}
		if !dstOK {
			t.Fatalf("trial %d: transfer claimed but target incorrect", trial)
		}
	}
}
