// Package pc implements the parallel-correctness framework of
// Section 4 (Ameloot, Geck, Ketsman, Neven, Schwentick; PODS 2015):
//
//   - the distributed one-round evaluation [Q,P](I),
//   - parallel-correctness on one instance (problem PCI) and on all
//     instances (problem PC),
//   - the saturation conditions (PC0) and (PC1) and the
//     characterization of Proposition 4.6,
//   - parallel-correctness transfer and its "covers" characterization
//     (Definitions 4.10/4.12, Proposition 4.13),
//   - unions of CQs, and bounded exact procedures for CQ¬ where
//     correctness splits into parallel-soundness and completeness
//     (Theorem 4.9).
//
// The decision procedures are exponential-time searches; Theorems 4.8,
// 4.9 and 4.14 place the problems at Πᵖ₂, coNEXPTIME and Πᵖ₃, so this
// is the canonical shape of an exact implementation.
package pc

import (
	"fmt"

	"mpclogic/internal/cq"
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
)

// DistributedEval computes [Q,P](I): the union over all nodes κ of
// Q(loc-inst_{P,I}(κ)) — Section 4.1.
func DistributedEval(q *cq.CQ, p policy.Policy, i *rel.Instance) *rel.Instance {
	out := rel.NewInstance()
	out.EnsureRelation(q.Head.Rel, len(q.Head.Args))
	for κ := policy.Node(0); int(κ) < p.NumNodes(); κ++ {
		local := policy.LocalInstance(p, i, κ)
		out.AddAll(cq.Output(q, local))
	}
	return out
}

// DistributedEvalUCQ computes [Q,P](I) for a union of CQs.
func DistributedEvalUCQ(u *cq.UCQ, p policy.Policy, i *rel.Instance) *rel.Instance {
	out := rel.NewInstance()
	h := u.Disjuncts[0].Head
	out.EnsureRelation(h.Rel, len(h.Args))
	for κ := policy.Node(0); int(κ) < p.NumNodes(); κ++ {
		local := policy.LocalInstance(p, i, κ)
		out.AddAll(cq.OutputUCQ(u, local))
	}
	return out
}

// ParallelCorrectOn decides problem PCI for a single instance:
// Q(I) = [Q,P](I). It works for any CQ extension since it evaluates
// directly.
func ParallelCorrectOn(q *cq.CQ, p policy.Policy, i *rel.Instance) bool {
	return cq.Output(q, i).Equal(DistributedEval(q, p, i))
}

// Witness explains a saturation failure: a valuation whose required
// facts meet at no node.
type Witness struct {
	Valuation cq.Valuation
	Facts     []rel.Fact
}

func (w *Witness) String() string {
	return fmt.Sprintf("valuation %v requires %v which meet at no node", w.Valuation, w.Facts)
}

// universeOf resolves the universe for a decision: an explicit one wins;
// otherwise the policy must implement policy.Universed.
func universeOf(p policy.Policy, explicit []rel.Value) ([]rel.Value, error) {
	if explicit != nil {
		return explicit, nil
	}
	if u, ok := p.(policy.Universed); ok {
		return u.Universe(), nil
	}
	return nil, fmt.Errorf("pc: policy carries no universe; pass one explicitly")
}

// StronglySaturates decides condition (PC0): every valuation for Q over
// the universe has its required facts meet at some node. PC0 is
// sufficient but not necessary for parallel-correctness (Example 4.3).
// A nil universe defers to the policy's.
func StronglySaturates(q *cq.CQ, p policy.Policy, universe []rel.Value) (bool, *Witness, error) {
	if q.HasNegation() {
		return false, nil, fmt.Errorf("pc: (PC0) is defined for CQs without negation")
	}
	u, err := universeOf(p, universe)
	if err != nil {
		return false, nil, err
	}
	var w *Witness
	cq.AllValuations(q.Vars(), u, func(v cq.Valuation) bool {
		if !v.SatisfiesDiseq(q) {
			return true
		}
		facts := v.RequiredFacts(q)
		if !policy.MeetsAtSomeNode(p, facts) {
			w = &Witness{Valuation: v.Clone(), Facts: facts}
			return false
		}
		return true
	})
	return w == nil, w, nil
}

// Saturates decides condition (PC1): every minimal valuation for Q over
// the universe has its required facts meet at some node. By
// Proposition 4.6 this is equivalent to parallel-correctness of Q
// under P.
func Saturates(q *cq.CQ, p policy.Policy, universe []rel.Value) (bool, *Witness, error) {
	if q.HasNegation() {
		return false, nil, fmt.Errorf("pc: (PC1) is defined for CQs without negation; use the bounded CQ¬ procedures")
	}
	u, err := universeOf(p, universe)
	if err != nil {
		return false, nil, err
	}
	var w *Witness
	err = cq.EachMinimalValuation(q, u, func(v cq.Valuation) bool {
		facts := v.RequiredFacts(q)
		if !policy.MeetsAtSomeNode(p, facts) {
			w = &Witness{Valuation: v.Clone(), Facts: facts}
			return false
		}
		return true
	})
	if err != nil {
		return false, nil, err
	}
	return w == nil, w, nil
}

// ParallelCorrect decides problem PC for a CQ (optionally with
// inequalities) via Proposition 4.6.
func ParallelCorrect(q *cq.CQ, p policy.Policy, universe []rel.Value) (bool, *Witness, error) {
	return Saturates(q, p, universe)
}

// SaturatesUCQ decides parallel-correctness for a union of CQs. The
// suitable notion of minimal valuation for unions ([Geck et al.]):
// a valuation V for disjunct Qi is union-minimal if no valuation W for
// any disjunct Qj derives the same head fact from a strict subset of
// V's required facts.
func SaturatesUCQ(u *cq.UCQ, p policy.Policy, universe []rel.Value) (bool, *Witness, error) {
	if u.HasNegation() {
		return false, nil, fmt.Errorf("pc: use bounded procedures for UCQ¬")
	}
	uni, err := universeOf(p, universe)
	if err != nil {
		return false, nil, err
	}
	var w *Witness
	for _, q := range u.Disjuncts {
		q := q
		cq.AllValuations(q.Vars(), uni, func(v cq.Valuation) bool {
			if !v.SatisfiesDiseq(q) {
				return true
			}
			if !unionMinimal(u, q, v) {
				return true
			}
			facts := v.RequiredFacts(q)
			if !policy.MeetsAtSomeNode(p, facts) {
				w = &Witness{Valuation: v.Clone(), Facts: facts}
				return false
			}
			return true
		})
		if w != nil {
			break
		}
	}
	return w == nil, w, nil
}

// unionMinimal reports whether v (a valuation for disjunct q of u) is
// minimal in the union sense. The dominating valuation only needs
// values from adom(v(body_q)) plus the constants of the disjuncts.
func unionMinimal(u *cq.UCQ, q *cq.CQ, v cq.Valuation) bool {
	required := v.RequiredInstance(q)
	head := v.Derives(q)
	candidates := required.ADom()
	for _, qj := range u.Disjuncts {
		candidates = candidates.Union(qj.Constants())
	}
	universe := candidates.Sorted()
	for _, qj := range u.Disjuncts {
		qj := qj
		dominated := false
		cq.AllValuations(qj.Vars(), universe, func(w cq.Valuation) bool {
			if !w.SatisfiesDiseq(qj) {
				return true
			}
			if !w.Derives(qj).Equal(head) {
				return true
			}
			wi := w.RequiredInstance(qj)
			if wi.SubsetOf(required) && wi.Len() < required.Len() {
				dominated = true
				return false
			}
			return true
		})
		if dominated {
			return false
		}
	}
	return true
}
