package pc

import (
	"testing"

	"mpclogic/internal/cq"
	"mpclogic/internal/mpc"
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
)

// CoversFull agrees with the general Covers on full queries (and is
// the tractable fragment of Theorem 4.14's discussion).
func TestCoversFullAgreesWithGeneral(t *testing.T) {
	d := rel.NewDict()
	fulls := []*cq.CQ{
		cq.MustParse(d, "H(x, y) :- R(x, y)"),
		cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z)"),
		cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)"),
		cq.MustParse(d, "H(x, y) :- R(x, y), S(y, x)"),
	}
	for _, q := range fulls {
		for _, qp := range fulls {
			fast, _, err := CoversFull(q, qp)
			if err != nil {
				t.Fatal(err)
			}
			slow, _, err := Covers(q, qp)
			if err != nil {
				t.Fatal(err)
			}
			if fast != slow {
				t.Errorf("CoversFull(%v, %v) = %v, Covers = %v", q, qp, fast, slow)
			}
		}
	}
	notFull := cq.MustParse(d, "H(x) :- R(x, y)")
	if _, _, err := CoversFull(notFull, fulls[0]); err == nil {
		t.Errorf("non-full query accepted")
	}
}

func TestGeneralizedEvalUnionMatchesDistributedEval(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, z) :- R(x, y), S(y, z)")
	i := rel.MustInstance(d, "R(a,b)", "S(b,c)", "R(c,d)", "S(d,e)")
	pol := &policy.Hash{Nodes: 3}
	got, err := GeneralizedEval([]*cq.CQ{q}, UnionAgg, pol, i)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(DistributedEval(q, pol, i)) {
		t.Errorf("union aggregator deviates from [Q,P](I)")
	}
}

func TestGeneralizedEvalPerNodeQueries(t *testing.T) {
	d := rel.NewDict()
	// Node 0 evaluates the R-half, node 1 the S-half of a union-like
	// rewriting; the aggregator is union and the reference is a UCQ
	// simulated by two per-node CQs with the same head.
	q0 := cq.MustParse(d, "H(x) :- R(x, x)")
	q1 := cq.MustParse(d, "H(x) :- S(x)")
	pol := &policy.Func{
		Nodes: 2,
		Resp: func(κ policy.Node, f rel.Fact) bool {
			if f.Rel == "R" {
				return κ == 0
			}
			return κ == 1
		},
	}
	i := rel.MustInstance(d, "R(a,a)", "R(a,b)", "S(c)")
	got, err := GeneralizedEval([]*cq.CQ{q0, q1}, UnionAgg, pol, i)
	if err != nil {
		t.Fatal(err)
	}
	want := rel.MustInstance(d, "H(a)", "H(c)")
	if !got.Equal(want) {
		t.Errorf("per-node queries: got %v want %v", got.StringWith(d), want.StringWith(d))
	}
	// Wrong query count is rejected.
	if _, err := GeneralizedEval([]*cq.CQ{q0, q1, q1}, UnionAgg, pol, i); err == nil {
		t.Errorf("wrong query count accepted")
	}
}

func TestIntersectionAggregator(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x) :- R(x)")
	// Replication: every node computes the same result, intersection =
	// union = truth.
	repl := &policy.Replicate{Nodes: 3}
	i := rel.MustInstance(d, "R(a)", "R(b)")
	got, err := GeneralizedEval([]*cq.CQ{q}, IntersectionAgg, repl, i)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(cq.Output(q, i)) {
		t.Errorf("intersection under replication wrong")
	}
	// Partitioning: intersection loses everything not shared.
	hash := &policy.Hash{Nodes: 2}
	got2, err := GeneralizedEval([]*cq.CQ{q}, IntersectionAgg, hash, i)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Len() != 0 {
		t.Errorf("intersection over a partition should be empty, got %v", got2)
	}
	if IntersectionAgg(nil).Len() != 0 {
		t.Errorf("empty intersection not empty")
	}
}

func TestGeneralizedCorrectBounded(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x) :- R(x, x)")
	repl := &policy.Replicate{Nodes: 2}
	ok, cex, err := GeneralizedCorrectBounded(q, []*cq.CQ{q}, UnionAgg, repl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("replication incorrect: cex %v", cex)
	}
	// A policy dropping R entirely is incorrect, with a counterexample.
	drop := &policy.Func{Nodes: 2, Resp: func(policy.Node, rel.Fact) bool { return false }}
	ok, cex, err = GeneralizedCorrectBounded(q, []*cq.CQ{q}, UnionAgg, drop, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ok || cex == nil {
		t.Errorf("dropping policy accepted")
	}
}

// Multi-round correctness: the cascaded two-round join plan computes
// the 2-path query on all bounded instances and placements.
func TestMultiRoundCorrectBounded(t *testing.T) {
	d := rel.NewDict()
	ref := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z)")
	algo := func(p int) []mpc.Round {
		return []mpc.Round{
			{
				Name: "ship-R",
				Route: mpc.ByRelation(map[string]mpc.Router{
					"R": mpc.HashOn(p, []int{1}, 3),
				}),
				Keep: func(f rel.Fact) bool { return f.Rel == "S" },
			},
			{
				Name: "ship-S-and-join",
				Route: mpc.ByRelation(map[string]mpc.Router{
					"S": mpc.HashOn(p, []int{0}, 3),
				}),
				Keep: func(f rel.Fact) bool { return f.Rel == "R" },
				Compute: func(_ int, local *rel.Instance) *rel.Instance {
					return cq.Output(ref, local)
				},
			},
		}
	}
	ok, cex, err := MultiRoundCorrectBounded(ref, algo, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("two-round join incorrect on %v", cex)
	}

	// A broken plan (second round loses the S facts entirely) is
	// caught with a counterexample.
	broken := func(p int) []mpc.Round {
		rs := algo(p)
		rs[1].Route = mpc.ByRelation(nil) // S dropped
		return rs
	}
	ok, cex, err = MultiRoundCorrectBounded(ref, broken, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("broken plan accepted")
	}
	if cex == nil {
		t.Errorf("no counterexample for broken plan")
	}
}

func TestMultiRoundCorrectOn(t *testing.T) {
	d := rel.NewDict()
	ref := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z)")
	i := rel.MustInstance(d, "R(a,b)", "S(b,c)")
	algo := func(p int) []mpc.Round {
		return []mpc.Round{{
			Route: mpc.Broadcast(p),
			Compute: func(_ int, local *rel.Instance) *rel.Instance {
				return cq.Output(ref, local)
			},
		}}
	}
	ok, err := MultiRoundCorrectOn(ref, algo, 3, i)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("broadcast plan incorrect")
	}
}
