package pc

import (
	"math/rand"
	"testing"

	"mpclogic/internal/cq"
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
)

// Example 4.1 of the paper. Note: the paper prints the result as
// {H(a,b)} ∪ {H(a,c)}, but H(a,b) is not derivable from Ie at all —
// the only two satisfying valuation classes give H(a,a) (via path
// a→b→a and S(a,a)) and H(a,c) (via path a→b→c and S(c,a)). We encode
// the mathematically correct result {H(a,a), H(a,c)}, which moreover
// coincides with Qe(Ie), so Qe IS parallel-correct on Ie under P1;
// under P2 the distributed result is empty, hence not correct.
func TestExample41(t *testing.T) {
	d := rel.NewDict()
	qe := cq.MustParse(d, "H(x1, x3) :- R(x1, x2), R(x2, x3), S(x3, x1)")
	ie := rel.MustInstance(d, "R(a,b)", "R(b,a)", "R(b,c)", "S(a,a)", "S(c,a)")

	a := d.Value("a")
	// P1: all R-facts to both nodes; S(d1,d2) to node 0 if d1==d2 else node 1.
	p1 := &policy.Func{
		Nodes: 2,
		Resp: func(κ policy.Node, f rel.Fact) bool {
			if f.Rel == "R" {
				return true
			}
			if f.Rel == "S" {
				if f.Tuple[0] == f.Tuple[1] {
					return κ == 0
				}
				return κ == 1
			}
			return false
		},
		Univ: d.Values("a", "b", "c"),
	}

	loc0 := policy.LocalInstance(p1, ie, 0)
	wantLoc0 := rel.MustInstance(d, "R(a,b)", "R(b,a)", "R(b,c)", "S(a,a)")
	if !loc0.Equal(wantLoc0) {
		t.Errorf("loc-inst(κ1) = %v", loc0.StringWith(d))
	}
	loc1 := policy.LocalInstance(p1, ie, 1)
	wantLoc1 := rel.MustInstance(d, "R(a,b)", "R(b,a)", "R(b,c)", "S(c,a)")
	if !loc1.Equal(wantLoc1) {
		t.Errorf("loc-inst(κ2) = %v", loc1.StringWith(d))
	}

	got := DistributedEval(qe, p1, ie)
	want := rel.MustInstance(d, "H(a,a)", "H(a,c)")
	if !got.Equal(want) {
		t.Errorf("[Qe,P1](Ie) = %v, want %v", got.StringWith(d), want.StringWith(d))
	}
	if full := cq.Output(qe, ie); !full.Equal(want) {
		t.Errorf("Qe(Ie) = %v, want %v", full.StringWith(d), want.StringWith(d))
	}
	_ = a

	// P2: all R on node 0, all S on node 1 → empty result.
	p2 := &policy.Func{
		Nodes: 2,
		Resp: func(κ policy.Node, f rel.Fact) bool {
			if f.Rel == "R" {
				return κ == 0
			}
			return κ == 1
		},
		Univ: d.Values("a", "b", "c"),
	}
	got2 := DistributedEvalUCQ(&cq.UCQ{Disjuncts: []*cq.CQ{qe}}, p2, ie)
	if got2.Len() != 0 {
		t.Errorf("[Qe,P2](Ie) = %v, want empty", got2.StringWith(d))
	}
	if !ParallelCorrectOn(qe, p1, ie) {
		t.Errorf("Qe should be parallel-correct on Ie under P1 ([Qe,P1](Ie) = Qe(Ie))")
	}
	if ParallelCorrectOn(qe, p2, ie) {
		t.Errorf("Qe should NOT be parallel-correct on Ie under P2")
	}
}

// Example 4.3: PC0 fails for the policy but Q is parallel-correct
// (PC1 holds).
func TestExample43(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, z) :- R(x, y), R(y, z), R(x, x)")
	ab := rel.MustFact(d, "R(a,b)")
	ba := rel.MustFact(d, "R(b,a)")
	p := &policy.Func{
		Nodes: 2,
		Resp: func(κ policy.Node, f rel.Fact) bool {
			switch κ {
			case 0:
				return !f.Equal(ab)
			case 1:
				return !f.Equal(ba)
			}
			return false
		},
		Univ: d.Values("a", "b"),
	}

	strong, w0, err := StronglySaturates(q, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strong {
		t.Errorf("(PC0) holds but Example 4.3 shows the witness valuation {x↦a,y↦b,z↦a}")
	}
	if w0 == nil {
		t.Fatalf("no PC0 witness returned")
	}

	sat, w1, err := Saturates(q, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sat {
		t.Errorf("(PC1) fails (witness %v) but Example 4.3 proves parallel-correctness", w1)
	}

	// Cross-check with brute-force PCI over all instances over {a,b}.
	schema, _ := q.Schema()
	err = cq.EachInstance(schema, d.Values("a", "b"), func(i *rel.Instance) bool {
		if !ParallelCorrectOn(q, p, i) {
			t.Errorf("not parallel-correct on %v", i.StringWith(d))
			return false
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Proposition 4.6: (PC1) ⇔ parallel-correctness. We model-check both
// sides over random policies on a small universe.
func TestProposition46Random(t *testing.T) {
	d := rel.NewDict()
	queries := []*cq.CQ{
		cq.MustParse(d, "H(x, z) :- R(x, y), R(y, z)"),
		cq.MustParse(d, "H(x, z) :- R(x, y), R(y, z), R(x, x)"),
		cq.MustParse(d, "H(x) :- R(x, y), S(y, x)"),
		cq.MustParse(d, "H(x, y) :- R(x, y), x != y"),
	}
	universe := []rel.Value{0, 1}
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		q := queries[trial%len(queries)]
		schema, err := q.Schema()
		if err != nil {
			t.Fatal(err)
		}
		p := randomFinitePolicy(r, schema, universe, 2)

		sat, _, err := Saturates(q, p, universe)
		if err != nil {
			t.Fatal(err)
		}
		correct := true
		err = cq.EachInstance(schema, universe, func(i *rel.Instance) bool {
			if !ParallelCorrectOn(q, p, i) {
				correct = false
				return false
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if sat != correct {
			t.Fatalf("trial %d query %v: (PC1)=%v but model-checked correctness=%v", trial, q, sat, correct)
		}
	}
}

// PC0 implies PC1 (strong saturation is sufficient).
func TestPC0ImpliesPC1(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, z) :- R(x, y), R(y, z), R(x, x)")
	universe := []rel.Value{0, 1}
	r := rand.New(rand.NewSource(9))
	schema, _ := q.Schema()
	for trial := 0; trial < 60; trial++ {
		p := randomFinitePolicy(r, schema, universe, 2)
		strong, _, err := StronglySaturates(q, p, universe)
		if err != nil {
			t.Fatal(err)
		}
		if !strong {
			continue
		}
		sat, w, err := Saturates(q, p, universe)
		if err != nil {
			t.Fatal(err)
		}
		if !sat {
			t.Fatalf("PC0 holds but PC1 fails: %v", w)
		}
	}
}

func randomFinitePolicy(r *rand.Rand, schema rel.Schema, universe []rel.Value, nodes int) *policy.Finite {
	p := policy.NewFinite(nodes, universe)
	for _, f := range schema.AllFacts(universe) {
		for κ := 0; κ < nodes; κ++ {
			if r.Intn(2) == 0 {
				p.Assign(policy.Node(κ), f)
			}
		}
	}
	return p
}

func TestSaturatesRejectsNegation(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x) :- R(x), not S(x)")
	p := policy.NewFinite(1, d.Values("a"))
	if _, _, err := Saturates(q, p, nil); err == nil {
		t.Errorf("negated query accepted by Saturates")
	}
	if _, _, err := StronglySaturates(q, p, nil); err == nil {
		t.Errorf("negated query accepted by StronglySaturates")
	}
}

func TestUniverseRequired(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x) :- R(x)")
	p := &policy.Replicate{Nodes: 2} // no universe
	if _, _, err := Saturates(q, p, nil); err == nil {
		t.Errorf("missing universe accepted")
	}
	if ok, _, err := Saturates(q, p, d.Values("a")); err != nil || !ok {
		t.Errorf("replication should saturate everything: %v %v", ok, err)
	}
}

func TestSaturatesUCQ(t *testing.T) {
	d := rel.NewDict()
	// Union where the second disjunct rescues the first: a valuation
	// requiring {R(a,b), R(b,a)} is not union-minimal when the
	// one-fact disjunct derives the same head.
	u := cq.MustParseUCQ(d, "H() :- R(x, y), R(y, x)\nH() :- R(x, x)")
	a, b := d.Value("a"), d.Value("b")
	universe := []rel.Value{a, b}

	// Policy that separates R(a,b) from R(b,a) but keeps each diagonal
	// fact somewhere.
	p := policy.NewFinite(2, universe)
	p.Assign(0, rel.NewFact("R", a, b))
	p.Assign(1, rel.NewFact("R", b, a))
	p.Assign(0, rel.NewFact("R", a, a))
	p.Assign(1, rel.NewFact("R", b, b))

	ok, w, err := SaturatesUCQ(u, p, universe)
	if err != nil {
		t.Fatal(err)
	}
	// The valuation x↦a,y↦b for the first disjunct requires
	// {R(a,b), R(b,a)} which never meet, and no disjunct derives H()
	// from a strict subset of those facts — H() via R(x,x) requires
	// R(a,a) which is NOT a subset fact. So it IS union-minimal and
	// saturation fails.
	if ok {
		t.Errorf("expected saturation failure, union-minimal valuation exists")
	} else if w == nil {
		t.Errorf("no witness")
	}

	// Single-disjunct union behaves exactly like the CQ.
	u2 := cq.MustParseUCQ(d, "H(x, z) :- R(x, y), R(y, z), R(x, x)")
	q2 := u2.Disjuncts[0]
	r := rand.New(rand.NewSource(17))
	schema, _ := q2.Schema()
	for trial := 0; trial < 20; trial++ {
		pr := randomFinitePolicy(r, schema, universe, 2)
		okU, _, err := SaturatesUCQ(u2, pr, universe)
		if err != nil {
			t.Fatal(err)
		}
		okQ, _, err := Saturates(q2, pr, universe)
		if err != nil {
			t.Fatal(err)
		}
		if okU != okQ {
			t.Fatalf("UCQ and CQ saturation disagree on singleton union")
		}
	}
}

// Hypercube-style distributions strongly saturate their query
// (noted after Definition 4.7). Here: a grid policy for the triangle
// query built by hand over a tiny universe.
func TestHypercubeStronglySaturates(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	universe := []rel.Value{0, 1, 2, 3}
	// 2×2×2 grid: node id = 4*hx + 2*hy + hz with h(v) = v mod 2.
	h := func(v rel.Value) int { return int(v) % 2 }
	p := &policy.Func{
		Nodes: 8,
		Resp: func(κ policy.Node, f rel.Fact) bool {
			x, y, z := int(κ)>>2&1, int(κ)>>1&1, int(κ)&1
			switch f.Rel {
			case "R":
				return h(f.Tuple[0]) == x && h(f.Tuple[1]) == y
			case "S":
				return h(f.Tuple[0]) == y && h(f.Tuple[1]) == z
			case "T":
				return h(f.Tuple[0]) == z && h(f.Tuple[1]) == x
			}
			return false
		},
		Univ: universe,
	}
	strong, w, err := StronglySaturates(q, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strong {
		t.Errorf("hypercube distribution fails PC0: %v", w)
	}
	sat, _, err := Saturates(q, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sat {
		t.Errorf("hypercube distribution fails PC1")
	}
}
