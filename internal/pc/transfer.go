package pc

import (
	"fmt"

	"mpclogic/internal/cq"
	"mpclogic/internal/rel"
)

// This file implements parallel-correctness transfer (Section 4.2).
// Transfer from Q to Q′ holds iff Q covers Q′ (Proposition 4.13):
// every minimal valuation V′ for Q′ is dominated by a minimal valuation
// V for Q with V′(body_Q′) ⊆ V(body_Q). Deciding transfer is
// Πᵖ₃-complete (Theorem 4.14); the procedure below is the canonical
// exponential search, made exact by the isomorphism argument: it
// suffices to check minimal valuations V′ over |vars(Q′)| fresh values
// (plus all constants), and for each to search V over
// adom(V′(body)) ∪ constants ∪ |vars(Q)| fresh values.

// CoverWitness explains a transfer failure: a minimal valuation of the
// target query that no minimal valuation of the source covers.
type CoverWitness struct {
	Valuation cq.Valuation // minimal valuation V′ for Q′
	Facts     []rel.Fact   // V′(body_Q′)
}

func (w *CoverWitness) String() string {
	return fmt.Sprintf("minimal valuation %v (requiring %v) is not covered", w.Valuation, w.Facts)
}

// Covers decides whether Q covers Q′ (Definition 4.12), equivalently
// whether parallel-correctness transfers from Q to Q′.
func Covers(q, qp *cq.CQ) (bool, *CoverWitness, error) {
	if q.HasNegation() || qp.HasNegation() {
		return false, nil, fmt.Errorf("pc: covers is defined for CQs without negation")
	}
	consts := q.Constants().Union(qp.Constants())

	// Universe for enumerating minimal valuations of Q′: one fresh
	// value per variable plus all constants.
	uPrime := freshUniverse(consts, len(qp.Vars()))

	var w *CoverWitness
	err := cq.EachMinimalValuation(qp, uPrime, func(vp cq.Valuation) bool {
		target := vp.RequiredInstance(qp)
		// Universe for the covering valuation: values of the target
		// facts, all constants, and enough fresh values for Q's
		// variables.
		base := target.ADom().Union(consts)
		uQ := freshUniverse(base, len(q.Vars()))
		covered := false
		innerErr := cq.EachMinimalValuation(q, uQ, func(v cq.Valuation) bool {
			if target.SubsetOf(v.RequiredInstance(q)) {
				covered = true
				return false
			}
			return true
		})
		if innerErr != nil {
			// Propagate through the witness-free failure path.
			w = &CoverWitness{Valuation: vp.Clone(), Facts: vp.RequiredFacts(qp)}
			return false
		}
		if !covered {
			w = &CoverWitness{Valuation: vp.Clone(), Facts: vp.RequiredFacts(qp)}
			return false
		}
		return true
	})
	if err != nil {
		return false, nil, err
	}
	return w == nil, w, nil
}

// Transfers decides whether parallel-correctness transfers from Q to
// Q′ (Definition 4.10), via Proposition 4.13.
func Transfers(q, qp *cq.CQ) (bool, *CoverWitness, error) {
	return Covers(q, qp)
}

// freshUniverse returns the values of base plus n fresh values not in
// base, in sorted order.
func freshUniverse(base rel.ValueSet, n int) []rel.Value {
	out := make(rel.ValueSet, len(base)+n)
	out.AddAll(base)
	next := rel.Value(1_000_000) // comfortably clear of test data
	for added := 0; added < n; next++ {
		if !out.Contains(next) {
			out.Add(next)
			added++
		}
	}
	return out.Sorted()
}

// CoversUCQ decides parallel-correctness transfer between unions of
// conjunctive queries ([Ameloot et al.]'s journal version extends
// Theorem 4.14 to unions; the complexity stays Πᵖ₃). The union-minimal
// valuations of the target must each be dominated by a union-minimal
// valuation of the source.
func CoversUCQ(u, up *cq.UCQ) (bool, *CoverWitness, error) {
	if u.HasNegation() || up.HasNegation() {
		return false, nil, fmt.Errorf("pc: covers is defined for unions without negation")
	}
	consts := make(rel.ValueSet)
	for _, q := range u.Disjuncts {
		consts.AddAll(q.Constants())
	}
	for _, q := range up.Disjuncts {
		consts.AddAll(q.Constants())
	}

	var w *CoverWitness
	for _, qp := range up.Disjuncts {
		qp := qp
		uPrime := freshUniverse(consts, len(qp.Vars()))
		cq.AllValuations(qp.Vars(), uPrime, func(vp cq.Valuation) bool {
			if !vp.SatisfiesDiseq(qp) {
				return true
			}
			if !unionMinimal(up, qp, vp) {
				return true
			}
			target := vp.RequiredInstance(qp)
			base := target.ADom().Union(consts)
			covered := false
			for _, q := range u.Disjuncts {
				q := q
				uQ := freshUniverse(base, len(q.Vars()))
				cq.AllValuations(q.Vars(), uQ, func(v cq.Valuation) bool {
					if !v.SatisfiesDiseq(q) {
						return true
					}
					if !unionMinimal(u, q, v) {
						return true
					}
					if target.SubsetOf(v.RequiredInstance(q)) {
						covered = true
						return false
					}
					return true
				})
				if covered {
					break
				}
			}
			if !covered {
				w = &CoverWitness{Valuation: vp.Clone(), Facts: vp.RequiredFacts(qp)}
				return false
			}
			return true
		})
		if w != nil {
			break
		}
	}
	return w == nil, w, nil
}

// TransfersUCQ decides transfer between unions via CoversUCQ.
func TransfersUCQ(u, up *cq.UCQ) (bool, *CoverWitness, error) {
	return CoversUCQ(u, up)
}
