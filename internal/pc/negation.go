package pc

import (
	"fmt"

	"mpclogic/internal/cq"
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
)

// This file implements the bounded exact procedures for
// parallel-correctness of (unions of) conjunctive queries with
// negation. Because CQ¬ is not monotone, correctness splits into
// parallel-soundness ([Q,P](I) ⊆ Q(I)) and parallel-completeness
// (Q(I) ⊆ [Q,P](I)) — see Theorem 4.9, where the combined problem is
// coNEXPTIME-complete and counterexamples can be exponentially large.
// The procedures below search all instances over a bounded universe;
// they are exact relative to that bound, which is the inherent shape
// of any exact algorithm for a coNEXPTIME-complete problem.

// NegReport is the outcome of a bounded CQ¬ correctness check.
type NegReport struct {
	Sound       bool
	Complete    bool
	SoundCex    *rel.Instance // witness instance violating soundness
	CompleteCex *rel.Instance
}

// Correct reports overall parallel-correctness.
func (r *NegReport) Correct() bool { return r.Sound && r.Complete }

func (r *NegReport) String() string {
	return fmt.Sprintf("sound=%v complete=%v", r.Sound, r.Complete)
}

// ParallelCorrectNegBounded checks parallel-soundness and
// -completeness of a CQ¬ under p for every instance over a universe
// of the given size (plus the query's constants).
func ParallelCorrectNegBounded(q *cq.CQ, p policy.Policy, universeSize int) (*NegReport, error) {
	schema, err := q.Schema()
	if err != nil {
		return nil, err
	}
	universe := boundedUniverse(universeSize, q.Constants())
	rep := &NegReport{Sound: true, Complete: true}
	err = cq.EachInstance(schema, universe, func(i *rel.Instance) bool {
		want := cq.Output(q, i)
		got := DistributedEval(q, p, i)
		if rep.Sound && !got.SubsetOf(want) {
			rep.Sound = false
			rep.SoundCex = i.Clone()
		}
		if rep.Complete && !want.SubsetOf(got) {
			rep.Complete = false
			rep.CompleteCex = i.Clone()
		}
		return rep.Sound || rep.Complete
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// ParallelCorrectUCQNegBounded is the UCQ¬ variant.
func ParallelCorrectUCQNegBounded(u *cq.UCQ, p policy.Policy, universeSize int) (*NegReport, error) {
	schema := rel.Schema{}
	consts := make(rel.ValueSet)
	for _, q := range u.Disjuncts {
		s, err := q.Schema()
		if err != nil {
			return nil, err
		}
		for r, a := range s {
			if err := schema.Declare(r, a); err != nil {
				return nil, err
			}
		}
		consts.AddAll(q.Constants())
	}
	universe := boundedUniverse(universeSize, consts)
	rep := &NegReport{Sound: true, Complete: true}
	err := cq.EachInstance(schema, universe, func(i *rel.Instance) bool {
		want := cq.OutputUCQ(u, i)
		got := DistributedEvalUCQ(u, p, i)
		if rep.Sound && !got.SubsetOf(want) {
			rep.Sound = false
			rep.SoundCex = i.Clone()
		}
		if rep.Complete && !want.SubsetOf(got) {
			rep.Complete = false
			rep.CompleteCex = i.Clone()
		}
		return rep.Sound || rep.Complete
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

func boundedUniverse(size int, consts rel.ValueSet) []rel.Value {
	out := make(rel.ValueSet, size+len(consts))
	out.AddAll(consts)
	next := rel.Value(0)
	for added := 0; added < size; next++ {
		if !out.Contains(next) {
			out.Add(next)
			added++
		}
	}
	return out.Sorted()
}
