package pc

import (
	"testing"

	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
)

// A policy-conforming distribution verifies clean; planting facts on
// the wrong nodes is reported per node with the Fact.Less-minimal
// offender, in ascending node order.
func TestVerifyPlacement(t *testing.T) {
	pol := &policy.Hash{Nodes: 3}
	inst := rel.NewInstance()
	for i := 0; i < 30; i++ {
		inst.Add(rel.NewFact("E", rel.Value(i), rel.Value(i+1)))
	}
	parts := policy.Distribute(pol, inst)
	if vs := VerifyPlacement(pol, parts); vs != nil {
		t.Fatalf("Distribute output flagged: %v", vs[0])
	}

	// Move one fact from node 0 to a node not responsible for it, and
	// plant two illegal facts on node 2 to check minimality.
	var stolen rel.Fact
	parts[0].Each(func(f rel.Fact) bool { stolen = f.Clone(); return false })
	wrong := policy.Node(1)
	if pol.Responsible(wrong, stolen) {
		wrong = 2
	}
	parts[wrong].Add(stolen)
	planted := policy.Node(2)
	if wrong == 2 {
		planted = 1
	}
	pick := func(name string) rel.Fact {
		for i := 0; i < 64; i++ {
			f := rel.NewFact(name, rel.Value(90+i), rel.Value(90+i))
			if !pol.Responsible(planted, f) {
				return f
			}
		}
		t.Fatalf("no %s fact avoids node %d under the hash policy", name, planted)
		return rel.Fact{}
	}
	small, big := pick("A"), pick("Z") // "A" sorts before "Z": small is Less-minimal
	parts[planted].Add(big)
	parts[planted].Add(small)

	vs := VerifyPlacement(pol, parts)
	if len(vs) != 2 {
		t.Fatalf("%d violations, want 2 (nodes %d and %d): %v", len(vs), wrong, planted, vs)
	}
	if vs[0].Node > vs[1].Node {
		t.Errorf("violations out of node order: %v", vs)
	}
	for _, v := range vs {
		switch v.Node {
		case wrong:
			if v.Fact.String() != stolen.String() {
				t.Errorf("node %d accused of %v, want %v", v.Node, v.Fact, stolen)
			}
		case planted:
			if v.Fact.String() != small.String() {
				t.Errorf("node %d accused of %v, want the Less-minimal %v", v.Node, v.Fact, small)
			}
		default:
			t.Errorf("unexpected violation on node %d: %v", v.Node, v)
		}
		if v.Error() == "" {
			t.Errorf("violation has empty error text")
		}
	}
}

// Replication places everything everywhere: no distribution of any
// subset can violate it.
func TestVerifyPlacementReplicate(t *testing.T) {
	pol := &policy.Replicate{Nodes: 2}
	parts := []*rel.Instance{rel.NewInstance(), rel.NewInstance()}
	parts[0].Add(rel.NewFact("R", 1, 2))
	parts[1].Add(rel.NewFact("S", 3))
	if vs := VerifyPlacement(pol, parts); vs != nil {
		t.Fatalf("replication flagged a violation: %v", vs[0])
	}
}
