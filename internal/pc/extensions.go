package pc

import (
	"fmt"

	"mpclogic/internal/cq"
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
)

// This file implements the research directions Section 6 of the paper
// sketches for the parallel-correctness framework:
//
//   - the tractable case of transfer for full queries ([14,15] lower
//     the complexity from Πᵖ₃; for full queries every valuation is
//     minimal, so the minimality checks vanish),
//   - generalized one-round evaluation where each node may run its own
//     query and results are combined by an aggregator other than plain
//     union,
//   - a correctness checker for multi-round algorithms, phrased over
//     bounded instance spaces.

// CoversFull decides covers (hence transfer) for two FULL conjunctive
// queries without the minimality machinery: a full query's head binds
// every variable, so two valuations derive the same head fact only if
// they are equal — every valuation is minimal. This is the tractable
// fragment the paper mentions after Theorem 4.14.
func CoversFull(q, qp *cq.CQ) (bool, *CoverWitness, error) {
	if !q.IsFull() || !qp.IsFull() {
		return false, nil, fmt.Errorf("pc: CoversFull requires full queries")
	}
	if q.HasNegation() || qp.HasNegation() {
		return false, nil, fmt.Errorf("pc: covers is defined for CQs without negation")
	}
	consts := q.Constants().Union(qp.Constants())
	uPrime := freshUniverse(consts, len(qp.Vars()))

	var w *CoverWitness
	cq.AllValuations(qp.Vars(), uPrime, func(vp cq.Valuation) bool {
		if !vp.SatisfiesDiseq(qp) {
			return true
		}
		target := vp.RequiredInstance(qp)
		base := target.ADom().Union(consts)
		uQ := freshUniverse(base, len(q.Vars()))
		covered := false
		cq.AllValuations(q.Vars(), uQ, func(v cq.Valuation) bool {
			if !v.SatisfiesDiseq(q) {
				return true
			}
			if target.SubsetOf(v.RequiredInstance(q)) {
				covered = true
				return false
			}
			return true
		})
		if !covered {
			w = &CoverWitness{Valuation: vp.Clone(), Facts: vp.RequiredFacts(qp)}
			return false
		}
		return true
	})
	return w == nil, w, nil
}

// Aggregator combines the per-node results of a generalized one-round
// evaluation. Union is the paper's default; Intersection models
// consensus-style combination.
type Aggregator func(results []*rel.Instance) *rel.Instance

// UnionAgg is the standard union aggregator.
func UnionAgg(results []*rel.Instance) *rel.Instance {
	out := rel.NewInstance()
	for _, r := range results {
		out.AddAll(r)
	}
	return out
}

// IntersectionAgg keeps only facts computed by every node.
func IntersectionAgg(results []*rel.Instance) *rel.Instance {
	if len(results) == 0 {
		return rel.NewInstance()
	}
	out := results[0].Clone()
	for _, r := range results[1:] {
		out = out.Filter(func(f rel.Fact) bool { return r.Contains(f) })
	}
	return out
}

// GeneralizedEval is [Q̄, P, agg](I): node κ evaluates queries[κ] (or
// queries[0] if a single query is given) on its local instance, and
// the aggregator combines the node results — the "more complex
// aggregator functions than union / different query per node"
// generalization of Section 6.
func GeneralizedEval(queries []*cq.CQ, agg Aggregator, p policy.Policy, i *rel.Instance) (*rel.Instance, error) {
	n := p.NumNodes()
	if len(queries) != 1 && len(queries) != n {
		return nil, fmt.Errorf("pc: want 1 or %d queries, got %d", n, len(queries))
	}
	results := make([]*rel.Instance, n)
	for κ := 0; κ < n; κ++ {
		q := queries[0]
		if len(queries) == n {
			q = queries[κ]
		}
		results[κ] = cq.Output(q, policy.LocalInstance(p, i, policy.Node(κ)))
	}
	return agg(results), nil
}

// GeneralizedCorrectOn checks whether the generalized evaluation
// computes the reference query on one instance.
func GeneralizedCorrectOn(ref *cq.CQ, queries []*cq.CQ, agg Aggregator, p policy.Policy, i *rel.Instance) (bool, error) {
	got, err := GeneralizedEval(queries, agg, p, i)
	if err != nil {
		return false, err
	}
	return got.Equal(cq.Output(ref, i)), nil
}

// GeneralizedCorrectBounded checks the generalized evaluation against
// the reference query on every instance over a bounded universe.
func GeneralizedCorrectBounded(ref *cq.CQ, queries []*cq.CQ, agg Aggregator, p policy.Policy, universeSize int) (bool, *rel.Instance, error) {
	schema, err := ref.Schema()
	if err != nil {
		return false, nil, err
	}
	for _, q := range queries {
		s, err := q.Schema()
		if err != nil {
			return false, nil, err
		}
		for r, a := range s {
			if err := schema.Declare(r, a); err != nil {
				return false, nil, err
			}
		}
	}
	universe := boundedUniverse(universeSize, ref.Constants())
	var cex *rel.Instance
	var innerErr error
	if err := cq.EachInstance(schema, universe, func(i *rel.Instance) bool {
		ok, err2 := GeneralizedCorrectOn(ref, queries, agg, p, i)
		if err2 != nil {
			innerErr = err2
			return false
		}
		if !ok {
			cex = i.Clone()
			return false
		}
		return true
	}); err != nil {
		return false, nil, err
	}
	if innerErr != nil {
		return false, nil, innerErr
	}
	return cex == nil, cex, nil
}
