package pc_test

import (
	"fmt"

	"mpclogic/internal/cq"
	"mpclogic/internal/pc"
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
)

// Example 4.3 of the paper: the policy separating R(a,b) from R(b,a)
// fails the sufficient condition (PC0) but satisfies the exact
// characterization (PC1), so the query is parallel-correct.
func ExampleParallelCorrect() {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, z) :- R(x, y), R(y, z), R(x, x)")
	ab := rel.MustFact(d, "R(a,b)")
	ba := rel.MustFact(d, "R(b,a)")
	pol := &policy.Func{
		Nodes: 2,
		Resp: func(κ policy.Node, f rel.Fact) bool {
			if κ == 0 {
				return !f.Equal(ab)
			}
			return !f.Equal(ba)
		},
		Univ: d.Values("a", "b"),
	}
	strong, _, _ := pc.StronglySaturates(q, pol, nil)
	correct, _, _ := pc.ParallelCorrect(q, pol, nil)
	fmt.Println(strong, correct)
	// Output: false true
}

// Parallel-correctness transfer is orthogonal to containment
// (Figure 1): Q3 transfers to Q1 although Q3 ⊄ Q1.
func ExampleTransfers() {
	d := rel.NewDict()
	q3 := cq.MustParse(d, "H() :- S(x), R(x, y), T(y)")
	q1 := cq.MustParse(d, "H() :- S(x), R(x, x), T(x)")
	transfers, _, _ := pc.Transfers(q3, q1)
	contained, _ := cq.Contained(q3, q1)
	fmt.Println(transfers, contained)
	// Output: true false
}

// The distributed one-round evaluation [Q,P](I) of Example 4.1.
func ExampleDistributedEval() {
	d := rel.NewDict()
	qe := cq.MustParse(d, "H(x1, x3) :- R(x1, x2), R(x2, x3), S(x3, x1)")
	ie := rel.MustInstance(d, "R(a,b)", "R(b,a)", "R(b,c)", "S(a,a)", "S(c,a)")
	p2 := &policy.Func{ // all R on node 0, all S on node 1
		Nodes: 2,
		Resp: func(κ policy.Node, f rel.Fact) bool {
			if f.Rel == "R" {
				return κ == 0
			}
			return κ == 1
		},
	}
	fmt.Println(pc.DistributedEval(qe, p2, ie).StringWith(d))
	// Output: {}
}
