package pc

import (
	"mpclogic/internal/cq"
	"mpclogic/internal/mpc"
	"mpclogic/internal/rel"
)

// Section 6 asks for the parallel-correctness framework to be
// generalized "towards evaluation algorithms that comprise several
// rounds". This file provides the semantic side of that
// generalization: a bounded-exact checker deciding whether a
// multi-round MPC algorithm computes a reference query on every
// instance over a finite universe, together with the per-instance
// check. The static-analysis side (a PC1-style characterization for
// multiple rounds) is open in the literature; the checker gives the
// ground truth such a characterization would have to match.

// MultiRoundAlgorithm produces the rounds of an MPC algorithm for a
// given cluster size. It is a factory because routers may close over
// per-run salt.
type MultiRoundAlgorithm func(p int) []mpc.Round

// MultiRoundCorrectOn runs the algorithm on one instance over p
// servers (loaded round-robin) and compares the facts of the reference
// query's head relation against the centralized result.
func MultiRoundCorrectOn(ref *cq.CQ, algo MultiRoundAlgorithm, p int, i *rel.Instance) (bool, error) {
	c := mpc.NewCluster(p)
	c.LoadRoundRobin(i)
	if err := c.Run(algo(p)...); err != nil {
		return false, err
	}
	got := c.Output().Filter(func(f rel.Fact) bool { return f.Rel == ref.Head.Rel })
	return got.Equal(cq.Output(ref, i)), nil
}

// MultiRoundCorrectBounded checks the algorithm on every instance over
// a bounded universe, returning a counterexample when one exists.
// Initial placement matters for multi-round algorithms, so every
// rotation of the round-robin placement is tried as well.
func MultiRoundCorrectBounded(ref *cq.CQ, algo MultiRoundAlgorithm, p int, universeSize int) (bool, *rel.Instance, error) {
	schema, err := ref.Schema()
	if err != nil {
		return false, nil, err
	}
	universe := boundedUniverse(universeSize, ref.Constants())
	var cex *rel.Instance
	var innerErr error
	if err := cq.EachInstance(schema, universe, func(i *rel.Instance) bool {
		for rot := 0; rot < p; rot++ {
			c := mpc.NewCluster(p)
			loadRotated(c, i, rot)
			if err2 := c.Run(algo(p)...); err2 != nil {
				innerErr = err2
				return false
			}
			got := c.Output().Filter(func(f rel.Fact) bool { return f.Rel == ref.Head.Rel })
			if !got.Equal(cq.Output(ref, i)) {
				cex = i.Clone()
				return false
			}
		}
		return true
	}); err != nil {
		return false, nil, err
	}
	if innerErr != nil {
		return false, nil, innerErr
	}
	return cex == nil, cex, nil
}

// loadRotated is LoadRoundRobin with a starting offset, exercising
// different initial placements.
func loadRotated(c *mpc.Cluster, i *rel.Instance, rot int) {
	k := rot
	p := c.P()
	i.Each(func(f rel.Fact) bool {
		c.LoadAt(k%p, rel.FromFacts(f))
		k++
		return true
	})
}
