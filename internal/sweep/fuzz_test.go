package sweep

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// FuzzSweepMerge throws random job DAGs — with erroring, panicking,
// and flaky cells and backward dependency edges — at the scheduler and
// checks the contract the experiment harness rests on:
//
//  1. the merged results are byte-identical between the sequential
//     run and any parallel run,
//  2. every job gets exactly one result, in declared order,
//  3. failures and skips land exactly where the spec predicts them.
//
// Each byte of spec defines one job: the low 2 bits pick the kind
// (ok, error, panic, flaky-then-ok) and the high bits pick an optional
// dependency on an EARLIER job, so every generated graph is acyclic
// and in-range by construction — validation rejections are covered by
// unit tests, the fuzzer explores the execution space.
func FuzzSweepMerge(f *testing.F) {
	f.Add(uint8(2), []byte{})
	f.Add(uint8(3), []byte{0, 1, 2, 3})
	f.Add(uint8(8), []byte{0x00, 0x11, 0x42, 0x23, 0xf1, 0x07, 0x33, 0x9a})
	f.Add(uint8(1), []byte{1, 1, 1, 1, 1, 1})
	f.Add(uint8(4), []byte{2, 0x12, 0x22, 0x32, 0x42})

	f.Fuzz(func(t *testing.T, workersByte uint8, spec []byte) {
		if len(spec) > 48 {
			spec = spec[:48]
		}
		workers := 2 + int(workersByte)%7

		seq := runSpec(t, 1, spec)
		par := runSpec(t, workers, spec)
		if seq != par {
			t.Fatalf("workers=%d diverged from sequential:\n%s\nvs\n%s", workers, par, seq)
		}

		// Recompute the expected failure/skip sets from the spec alone
		// and check the sequential run against them.
		results, err := Run(1, makeJobs(spec), WithRetries(1))
		if err != nil {
			t.Fatalf("acyclic in-range spec rejected: %v", err)
		}
		if len(results) != len(spec) {
			t.Fatalf("%d jobs produced %d results", len(spec), len(results))
		}
		failed := make([]bool, len(spec))
		for i, b := range spec {
			kind := int(b) % 4
			r := results[i]
			if r.Name != fmt.Sprintf("job-%d", i) {
				t.Errorf("result %d holds job %q: merge order broken", i, r.Name)
			}
			if dep, ok := depOf(b, i); ok && failed[dep] {
				failed[i] = true
				if !r.Skipped || r.Attempts != 0 || r.Err == nil {
					t.Errorf("job %d should be skipped (dep %d failed): %+v", i, dep, r)
				}
				continue
			}
			switch kind {
			case 1: // error: fails every attempt
				failed[i] = true
				if r.Err == nil || r.Skipped || r.Attempts != 2 {
					t.Errorf("error job %d: %+v", i, r)
				}
			case 2: // panic: fails every attempt
				failed[i] = true
				if r.Err == nil || r.Skipped || !strings.Contains(r.Err.Error(), "panicked") {
					t.Errorf("panic job %d: %+v", i, r)
				}
			case 3: // flaky: fails once, succeeds on the retry
				if r.Err != nil || r.Attempts != 2 {
					t.Errorf("flaky job %d: %+v", i, r)
				}
			default: // ok
				if r.Err != nil || r.Attempts != 1 {
					t.Errorf("ok job %d: %+v", i, r)
				}
			}
		}
	})
}

func depOf(b byte, i int) (int, bool) {
	if i == 0 || (b>>2)%2 == 0 {
		return 0, false
	}
	return int(b>>3) % i, true
}

// makeJobs decodes a spec into fresh jobs. Fresh matters: flaky jobs
// carry a per-job attempt counter, so every Run call needs its own
// decode or the flakiness would leak across runs.
func makeJobs(spec []byte) []Job[string] {
	jobs := make([]Job[string], len(spec))
	for i, b := range spec {
		i, b := i, b
		j := Job[string]{Name: fmt.Sprintf("job-%d", i)}
		if dep, ok := depOf(b, i); ok {
			j.After = []int{dep}
		}
		switch int(b) % 4 {
		case 1:
			j.Run = func() (string, error) { return "", fmt.Errorf("boom-%d", i) }
		case 2:
			j.Run = func() (string, error) { panic(fmt.Sprintf("kaboom-%d", i)) }
		case 3:
			var tries atomic.Int64
			j.Run = func() (string, error) {
				if tries.Add(1) == 1 {
					return "", fmt.Errorf("flake-%d", i)
				}
				return fmt.Sprintf("late-%d", i), nil
			}
		default:
			j.Run = func() (string, error) { return fmt.Sprintf("ok-%d", i), nil }
		}
		jobs[i] = j
	}
	return jobs
}

func runSpec(t *testing.T, workers int, spec []byte) string {
	t.Helper()
	results, err := Run(workers, makeJobs(spec), WithRetries(1))
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "%s|%q|%v|%d|%v\n", r.Name, r.Value, r.Err, r.Attempts, r.Skipped)
	}
	return b.String()
}
