package sweep

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// render flattens results into one comparable string, the same shape
// the experiments harness ultimately prints.
func render[T any](rs []Result[T]) string {
	var b strings.Builder
	for i, r := range rs {
		fmt.Fprintf(&b, "[%d] %s attempts=%d skipped=%v", i, r.Name, r.Attempts, r.Skipped)
		if r.Err != nil {
			fmt.Fprintf(&b, " err=%v", r.Err)
		} else {
			fmt.Fprintf(&b, " value=%v", r.Value)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func TestRunEmpty(t *testing.T) {
	rs, err := Run[int](4, nil)
	if err != nil || rs != nil {
		t.Fatalf("empty sweep: got %v, %v", rs, err)
	}
}

func TestResultsInDeclaredOrder(t *testing.T) {
	// Force completion order to be the reverse of declared order: each
	// job waits for all later jobs to have started and finished their
	// useful work. With enough workers this cannot deadlock, and the
	// merge must still come back 0..n-1.
	const n = 6
	var started [n]chan struct{}
	for i := range started {
		started[i] = make(chan struct{})
	}
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job[int]{
			Name: fmt.Sprintf("j%d", i),
			Run: func() (int, error) {
				close(started[i])
				// Wait for every later job to have started, so earlier
				// jobs finish after later ones.
				for j := i + 1; j < n; j++ {
					<-started[j]
				}
				return i * i, nil
			},
		}
	}
	rs, err := Run(n, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r.Name != fmt.Sprintf("j%d", i) || r.Value != i*i || r.Err != nil {
			t.Fatalf("slot %d holds %+v", i, r)
		}
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	mk := func() []Job[string] {
		var jobs []Job[string]
		for i := 0; i < 20; i++ {
			i := i
			jobs = append(jobs, Job[string]{
				Name: fmt.Sprintf("cell-%02d", i),
				Run: func() (string, error) {
					switch i % 4 {
					case 1:
						return "", fmt.Errorf("boom-%d", i)
					case 2:
						panic(fmt.Sprintf("kaboom-%d", i))
					}
					return fmt.Sprintf("v%d", i*7), nil
				},
			})
		}
		return jobs
	}
	base, err := Run(1, mk())
	if err != nil {
		t.Fatal(err)
	}
	want := render(base)
	for _, workers := range []int{2, 3, 4, 8, 32} {
		rs, err := Run(workers, mk())
		if err != nil {
			t.Fatal(err)
		}
		if got := render(rs); got != want {
			t.Fatalf("workers=%d diverged from sequential:\n--- sequential\n%s--- parallel\n%s", workers, want, got)
		}
	}
}

func TestPanicCapturedWithoutStack(t *testing.T) {
	jobs := []Job[int]{
		{Name: "boom", Run: func() (int, error) { panic("wired to fail") }},
		{Name: "fine", Run: func() (int, error) { return 42, nil }},
	}
	rs, err := Run(2, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Err == nil || !strings.Contains(rs[0].Err.Error(), "wired to fail") {
		t.Fatalf("panic not captured: %+v", rs[0])
	}
	// Deterministic failure bytes: no goroutine IDs, no stack frames.
	if strings.Contains(rs[0].Err.Error(), "goroutine") || strings.Contains(rs[0].Err.Error(), ".go:") {
		t.Fatalf("panic error leaks nondeterministic context: %v", rs[0].Err)
	}
	if rs[1].Value != 42 || rs[1].Err != nil {
		t.Fatalf("sibling job damaged by panic: %+v", rs[1])
	}
}

func TestNilRunIsAnError(t *testing.T) {
	rs, err := Run(1, []Job[int]{{Name: "hollow"}})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Err == nil || !strings.Contains(rs[0].Err.Error(), "no Run function") {
		t.Fatalf("nil Run not reported: %+v", rs[0])
	}
}

func TestRetrySucceedsAndStops(t *testing.T) {
	var calls atomic.Int32
	jobs := []Job[int]{{
		Name: "flaky",
		Run: func() (int, error) {
			if calls.Add(1) < 3 {
				return 0, errors.New("transient")
			}
			return 7, nil
		},
	}}
	rs, err := Run(1, jobs, WithRetries(5))
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Err != nil || rs[0].Value != 7 || rs[0].Attempts != 3 {
		t.Fatalf("retry outcome wrong: %+v", rs[0])
	}
	if calls.Load() != 3 {
		t.Fatalf("kept retrying after success: %d calls", calls.Load())
	}
}

func TestRetriesBoundedAndValueZeroed(t *testing.T) {
	var calls atomic.Int32
	jobs := []Job[int]{{
		Name: "doomed",
		Run: func() (int, error) {
			calls.Add(1)
			return 99, errors.New("always")
		},
	}}
	rs, err := Run(1, jobs, WithRetries(2))
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Attempts != 3 || calls.Load() != 3 {
		t.Fatalf("want 3 attempts, got %d (%d calls)", rs[0].Attempts, calls.Load())
	}
	if rs[0].Value != 0 {
		t.Fatalf("failed job leaked a partial value: %+v", rs[0])
	}
}

func TestDependencyRunsAfterPrerequisite(t *testing.T) {
	var order atomic.Int32
	jobs := []Job[int]{
		{Name: "first", Run: func() (int, error) { return int(order.Add(1)), nil }},
		{Name: "second", After: []int{0}, Run: func() (int, error) { return int(order.Add(1)), nil }},
		{Name: "third", After: []int{1, 0}, Run: func() (int, error) { return int(order.Add(1)), nil }},
	}
	rs, err := Run(4, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Value != 1 || rs[1].Value != 2 || rs[2].Value != 3 {
		t.Fatalf("dependency order violated: %s", render(rs))
	}
}

func TestFailedDependencySkipsTransitively(t *testing.T) {
	ran := make([]atomic.Bool, 4)
	jobs := []Job[int]{
		{Name: "root", Run: func() (int, error) { ran[0].Store(true); return 0, errors.New("root failure") }},
		{Name: "child", After: []int{0}, Run: func() (int, error) { ran[1].Store(true); return 1, nil }},
		{Name: "grandchild", After: []int{1}, Run: func() (int, error) { ran[2].Store(true); return 2, nil }},
		{Name: "unrelated", Run: func() (int, error) { ran[3].Store(true); return 3, nil }},
	}
	rs, err := Run(2, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 2} {
		if !rs[i].Skipped || rs[i].Err == nil || rs[i].Attempts != 0 {
			t.Fatalf("job %d should be skipped: %+v", i, rs[i])
		}
		if ran[i].Load() {
			t.Fatalf("skipped job %d actually ran", i)
		}
	}
	if !strings.Contains(rs[1].Err.Error(), "root") {
		t.Fatalf("skip error should name the failed dependency: %v", rs[1].Err)
	}
	if !strings.Contains(rs[2].Err.Error(), "child") {
		t.Fatalf("transitive skip should name its direct dependency: %v", rs[2].Err)
	}
	if rs[3].Err != nil || rs[3].Value != 3 {
		t.Fatalf("unrelated job affected: %+v", rs[3])
	}
}

func TestGraphValidation(t *testing.T) {
	cases := []struct {
		name string
		jobs []Job[int]
		want string
	}{
		{"out-of-range", []Job[int]{{Name: "a", After: []int{5}}}, "out-of-range"},
		{"negative", []Job[int]{{Name: "a", After: []int{-1}}}, "out-of-range"},
		{"self", []Job[int]{{Name: "a", After: []int{0}}}, "depends on itself"},
		{"cycle", []Job[int]{
			{Name: "a", After: []int{1}, Run: func() (int, error) { return 0, nil }},
			{Name: "b", After: []int{0}, Run: func() (int, error) { return 0, nil }},
		}, "cycle"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rs, err := Run(2, c.jobs)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("want %q error, got results=%v err=%v", c.want, rs, err)
			}
		})
	}
}

func TestCycleErrorListsMembers(t *testing.T) {
	jobs := []Job[int]{
		{Name: "free", Run: func() (int, error) { return 0, nil }},
		{Name: "a", After: []int{2}},
		{Name: "b", After: []int{1}},
	}
	_, err := Run(1, jobs)
	if err == nil || !strings.Contains(err.Error(), "[1 2]") {
		t.Fatalf("cycle members not reported: %v", err)
	}
}

func TestWorkersClampedToOne(t *testing.T) {
	for _, w := range []int{0, -3} {
		rs, err := Run(w, []Job[int]{{Name: "a", Run: func() (int, error) { return 1, nil }}})
		if err != nil || len(rs) != 1 || rs[0].Value != 1 {
			t.Fatalf("workers=%d: %v %v", w, rs, err)
		}
	}
}

func TestConcurrencyIsBounded(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	var mu sync.Mutex
	jobs := make([]Job[int], 24)
	for i := range jobs {
		jobs[i] = Job[int]{
			Name: fmt.Sprintf("j%d", i),
			Run: func() (int, error) {
				c := cur.Add(1)
				mu.Lock()
				if c > peak.Load() {
					peak.Store(c)
				}
				mu.Unlock()
				// Busy handoff: give other workers a chance to overlap.
				for k := 0; k < 1000; k++ {
					_ = k * k
				}
				cur.Add(-1)
				return 0, nil
			},
		}
	}
	if _, err := Run(workers, jobs); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs with %d workers", p, workers)
	}
}

func TestDuplicateDependenciesTolerated(t *testing.T) {
	jobs := []Job[int]{
		{Name: "a", Run: func() (int, error) { return 1, nil }},
		{Name: "b", After: []int{0, 0, 0}, Run: func() (int, error) { return 2, nil }},
	}
	rs, err := Run(2, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rs[1].Value != 2 || rs[1].Err != nil {
		t.Fatalf("duplicate deps broke scheduling: %+v", rs[1])
	}
}
