// Package sweep is a deterministic worker-pool scheduler for
// experiment sweeps. It fans a declared list of jobs — optionally
// ordered by a dependency DAG — out over a bounded number of workers
// and merges the results in declared job order, so the output of a
// parallel sweep is byte-identical to the sequential one (the
// parallel-correctness property of Ameloot et al., applied to our own
// harness: the distributed evaluation must equal the sequential
// evaluation).
//
// The determinism argument has three legs:
//
//  1. Job closures are pure with respect to the sweep: each returns a
//     value derived only from its own inputs, so WHICH worker runs a
//     job, and WHEN, cannot change the value.
//  2. Results are placed by job index into a pre-sized slice by the
//     single coordinating goroutine; workers only ever send
//     (index, result) pairs over a channel. Completion order is
//     scheduler-dependent, placement is not.
//  3. Failure handling is value-deterministic: panics are converted to
//     errors carrying only the panic value (no stacks, no goroutine
//     IDs), retry counts are fixed per sweep, and the skip cascade for
//     dependents of failed jobs depends only on dependency edges and
//     job outcomes.
//
// The package is wall-clock free by construction (mpclint's
// wallclock-free analyzer runs on it): timing annotations are the
// caller's business and must stay out of the values jobs return.
package sweep

import (
	"fmt"
	"sync"
)

// Job is one schedulable unit: a named closure plus the indices of
// jobs that must complete successfully before it may run.
type Job[T any] struct {
	// Name labels the job in results and error messages. Empty names
	// are replaced by "job-<index>".
	Name string
	// After lists indices (into the jobs slice given to Run) that must
	// finish before this job starts. If any of them fails or is
	// skipped, this job is skipped too. Duplicates are allowed;
	// out-of-range or self indices reject the whole sweep.
	After []int
	// Run produces the job's value. It may panic: the panic is
	// captured and reported as this job's error without taking down
	// the sweep.
	Run func() (T, error)
}

// Result is one job's outcome, returned in declared job order.
type Result[T any] struct {
	Name string
	// Value is the zero value whenever Err is non-nil.
	Value T
	Err   error
	// Attempts counts executions of Run (1 + retries actually used).
	// Skipped jobs have Attempts == 0.
	Attempts int
	// Skipped marks a job that never ran because a dependency failed.
	Skipped bool
}

// Options configures a sweep.
type Options struct {
	retries int
}

// Option mutates sweep Options.
type Option func(*Options)

// WithRetries re-runs a failing (or panicking) job up to n extra
// times, keeping the last outcome. Retries are part of the declared
// schedule, not an adaptive mechanism: every run of the same sweep
// retries identically.
func WithRetries(n int) Option {
	return func(o *Options) {
		if n > 0 {
			o.retries = n
		}
	}
}

// Run executes jobs on at most workers concurrent goroutines and
// returns one Result per job, in declared job order. The returned
// error is non-nil only for a malformed job graph (out-of-range or
// self dependency, or a dependency cycle); job failures are reported
// per-Result so one bad cell cannot abort a sweep.
//
// Run(1, jobs) is the sequential reference execution; for every
// workers >= 1 the returned results are identical to it.
func Run[T any](workers int, jobs []Job[T], opts ...Option) ([]Result[T], error) {
	var cfg Options
	for _, o := range opts {
		o(&cfg)
	}
	if workers < 1 {
		workers = 1
	}
	n := len(jobs)
	if n == 0 {
		return nil, nil
	}

	// Build the dependency graph and reject malformed inputs before
	// starting any goroutine.
	indeg := make([]int, n)
	children := make([][]int, n)
	for i := range jobs {
		seen := make(map[int]bool, len(jobs[i].After))
		for _, dep := range jobs[i].After {
			if dep < 0 || dep >= n {
				return nil, fmt.Errorf("sweep: job %d (%s) depends on out-of-range job %d", i, jobName(jobs, i), dep)
			}
			if dep == i {
				return nil, fmt.Errorf("sweep: job %d (%s) depends on itself", i, jobName(jobs, i))
			}
			if seen[dep] {
				continue
			}
			seen[dep] = true
			indeg[i]++
			children[dep] = append(children[dep], i)
		}
	}
	if cyclic := findCycle(indeg, children); len(cyclic) > 0 {
		return nil, fmt.Errorf("sweep: dependency cycle through jobs %v", cyclic)
	}

	results := make([]Result[T], n)

	// Workers pull job indices from ready and push (index, result)
	// pairs to completed; only the coordinating goroutine below ever
	// touches results, indeg, or children, so placement is
	// single-writer and deterministic. Both channels are sized n, so
	// neither side can block indefinitely.
	type placed struct {
		idx int
		res Result[T]
	}
	ready := make(chan int, n)
	completed := make(chan placed, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range ready {
				completed <- placed{idx: idx, res: runJob(jobs[idx], idx, cfg.retries)}
			}
		}()
	}

	// Coordinate: seed with indegree-zero jobs in declared order, then
	// alternate between launching newly unblocked jobs and collecting
	// one completion. Jobs whose dependencies failed are resolved
	// inline as skipped, which may unblock (and skip) further
	// dependents before any worker round-trip.
	var queue []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	done := 0
	inflight := 0
	settle := func(i int, r Result[T]) {
		results[i] = r
		done++
		for _, c := range children[i] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	for done < n {
		for len(queue) > 0 {
			i := queue[0]
			queue = queue[1:]
			if cause := failedDep(jobs[i].After, results); cause >= 0 {
				settle(i, Result[T]{
					Name:    jobName(jobs, i),
					Skipped: true,
					Err:     fmt.Errorf("sweep: skipped: dependency %s failed", jobName(jobs, cause)),
				})
				continue
			}
			ready <- i
			inflight++
		}
		if done == n {
			break
		}
		p := <-completed
		inflight--
		settle(p.idx, p.res)
	}
	close(ready)
	wg.Wait()
	return results, nil
}

// jobName returns jobs[i].Name or a positional fallback.
func jobName[T any](jobs []Job[T], i int) string {
	if jobs[i].Name != "" {
		return jobs[i].Name
	}
	return fmt.Sprintf("job-%d", i)
}

// failedDep returns the first dependency (in declared After order)
// whose result carries an error, or -1. It is only called once every
// dependency of the job has settled.
func failedDep[T any](after []int, results []Result[T]) int {
	for _, dep := range after {
		if results[dep].Err != nil {
			return dep
		}
	}
	return -1
}

// runJob executes one job with bounded retries and panic capture. The
// captured error carries only the panic value — never a stack trace —
// so failure bytes are identical run to run.
func runJob[T any](j Job[T], idx int, retries int) Result[T] {
	name := j.Name
	if name == "" {
		name = fmt.Sprintf("job-%d", idx)
	}
	res := Result[T]{Name: name}
	for attempt := 0; ; attempt++ {
		v, err := protect(j.Run)
		res.Attempts = attempt + 1
		res.Value, res.Err = v, err
		if err != nil {
			var zero T
			res.Value = zero
		}
		if err == nil || attempt >= retries {
			return res
		}
	}
}

// protect runs fn, converting a panic into an ordinary error.
func protect[T any](fn func() (T, error)) (v T, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			var zero T
			v, err = zero, fmt.Errorf("sweep: job panicked: %v", rec)
		}
	}()
	if fn == nil {
		return v, fmt.Errorf("sweep: job has no Run function")
	}
	return fn()
}

// findCycle runs Kahn's algorithm on a copy of the graph and returns
// the ascending indices of jobs stuck on a cycle (empty when acyclic).
func findCycle(indeg []int, children [][]int) []int {
	n := len(indeg)
	deg := append([]int(nil), indeg...)
	var queue []int
	for i := 0; i < n; i++ {
		if deg[i] == 0 {
			queue = append(queue, i)
		}
	}
	processed := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		processed++
		for _, c := range children[i] {
			deg[c]--
			if deg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if processed == n {
		return nil
	}
	var stuck []int
	for i := 0; i < n; i++ {
		if deg[i] > 0 {
			stuck = append(stuck, i)
		}
	}
	return stuck
}
