package mapreduce

import (
	"math"
	"testing"

	"mpclogic/internal/cq"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

func TestJoinJobMatchesCentralized(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z)")
	inst := workload.JoinSkewed(150, 0.2)
	want := cq.Output(q, inst)

	job, err := JoinJob(q)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := Run(8, inst, job)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("MR join output differs from centralized")
	}
	if len(stats) != 1 || stats[0].TotalComm != 300 {
		t.Errorf("stats = %+v; every tuple should be shuffled exactly once", stats)
	}
}

func TestJoinJobSkewLoad(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z)")
	m := 1000
	inst := workload.JoinSkewed(m, 0.5)
	job, err := JoinJob(q)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := Run(16, inst, job)
	if err != nil {
		t.Fatal(err)
	}
	// The heavy key carries m tuples (half of R plus half of S) to one
	// reducer: the hallmark of repartition skew.
	if stats[0].MaxLoad < m {
		t.Errorf("max load %d; expected ≥ %d from the heavy hitter", stats[0].MaxLoad, m)
	}
}

func TestJoinJobErrors(t *testing.T) {
	d := rel.NewDict()
	if _, err := JoinJob(cq.MustParse(d, "H(x) :- R(x)")); err == nil {
		t.Errorf("single atom accepted")
	}
	if _, err := JoinJob(cq.MustParse(d, "H(x, z) :- R(x, y), R(y, z)")); err == nil {
		t.Errorf("self join accepted")
	}
	if _, err := JoinJob(cq.MustParse(d, "H(x, y) :- R(x), S(y)")); err == nil {
		t.Errorf("cross product accepted")
	}
}

func TestRunValidation(t *testing.T) {
	if _, _, err := Run(0, rel.NewInstance()); err == nil {
		t.Errorf("zero reducers accepted")
	}
	if _, _, err := Run(2, rel.NewInstance(), Job{Name: "bad"}); err == nil {
		t.Errorf("job without map/reduce accepted")
	}
}

func TestTransitiveClosureLinear(t *testing.T) {
	g := workload.PathGraph(12)
	res, err := TransitiveClosure(4, g, "E", false)
	if err != nil {
		t.Fatal(err)
	}
	want := SemiNaiveClosure(g, "E")
	if !res.Closure.Equal(want) {
		t.Errorf("linear TC wrong: %d vs %d facts", res.Closure.Len(), want.Len())
	}
	// Path of 12 edges: closure has 12·13/2 = 78 pairs.
	if res.Closure.Len() != 78 {
		t.Errorf("closure size = %d, want 78", res.Closure.Len())
	}
}

func TestTransitiveClosureDoubling(t *testing.T) {
	g := workload.PathGraph(32)
	lin, err := TransitiveClosure(4, g, "E", false)
	if err != nil {
		t.Fatal(err)
	}
	dbl, err := TransitiveClosure(4, g, "E", true)
	if err != nil {
		t.Fatal(err)
	}
	if !lin.Closure.Equal(dbl.Closure) {
		t.Fatalf("linear and doubling closures differ")
	}
	// Doubling needs O(log n) rounds; linear needs Θ(n).
	if dbl.Rounds > int(math.Ceil(math.Log2(32)))+2 {
		t.Errorf("doubling used %d rounds; want ≈ log₂(32)+1", dbl.Rounds)
	}
	if lin.Rounds < 31 {
		t.Errorf("linear used %d rounds; want ≈ 31", lin.Rounds)
	}
	if dbl.Rounds >= lin.Rounds {
		t.Errorf("doubling (%d rounds) not faster than linear (%d)", dbl.Rounds, lin.Rounds)
	}
}

func TestTransitiveClosureCycle(t *testing.T) {
	g := workload.CycleGraph(6)
	res, err := TransitiveClosure(4, g, "E", true)
	if err != nil {
		t.Fatal(err)
	}
	// On a cycle every ordered pair (including self) is reachable.
	if res.Closure.Len() != 36 {
		t.Errorf("cycle closure = %d pairs, want 36", res.Closure.Len())
	}
	if !res.Closure.Equal(SemiNaiveClosure(g, "E")) {
		t.Errorf("cycle closure differs from semi-naive")
	}
}

func TestTransitiveClosureRandomAgainstSemiNaive(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := workload.RandomGraph(15, 25, seed)
		for _, doubling := range []bool{false, true} {
			res, err := TransitiveClosure(3, g, "E", doubling)
			if err != nil {
				t.Fatal(err)
			}
			want := SemiNaiveClosure(g, "E")
			if !res.Closure.Equal(want) {
				t.Fatalf("seed %d doubling=%v: closure mismatch", seed, doubling)
			}
		}
	}
}

func TestTransitiveClosureEmpty(t *testing.T) {
	res, err := TransitiveClosure(2, rel.NewInstance(), "E", false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Closure.Len() != 0 {
		t.Errorf("closure of empty graph nonempty")
	}
}

func TestSemiJoinJob(t *testing.T) {
	d := rel.NewDict()
	inst := rel.MustInstance(d, "R(a,b)", "R(c,d)", "S(b)", "S(x)")
	job, err := SemiJoinJob("R", "S", []int{1}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := Run(4, inst, job)
	if err != nil {
		t.Fatal(err)
	}
	want := rel.MustInstance(d, "R(a,b)")
	if !out.Equal(want) {
		t.Errorf("semijoin = %v, want %v", out.StringWith(d), want.StringWith(d))
	}
	if _, err := SemiJoinJob("R", "R", []int{0}, []int{0}); err == nil {
		t.Errorf("same-name semijoin accepted")
	}
	if _, err := SemiJoinJob("R", "S", []int{0, 1}, []int{0}); err == nil {
		t.Errorf("ragged columns accepted")
	}
}

// A Yannakakis-flavoured MR program: semijoin-reduce then join; the
// reduction shrinks what the join job must shuffle.
func TestSemiJoinReducesShuffle(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z)")
	inst := rel.NewInstance()
	for k := 0; k < 200; k++ {
		inst.Add(rel.NewFact("R", rel.Value(k), rel.Value(1000+k)))
	}
	for k := 0; k < 20; k++ { // only 10% of R joins
		inst.Add(rel.NewFact("S", rel.Value(1000+k), rel.Value(2000+k)))
	}
	join, err := JoinJob(q)
	if err != nil {
		t.Fatal(err)
	}
	// Direct join: shuffles all 220 tuples.
	direct, dStats, err := Run(4, inst, join)
	if err != nil {
		t.Fatal(err)
	}
	// Reduce first: R ⋉ S, then join the survivors.
	semi, err := SemiJoinJob("R", "S", []int{1}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	reduced, _, err := Run(4, inst, semi)
	if err != nil {
		t.Fatal(err)
	}
	reduced.AddAll(inst.Filter(func(f rel.Fact) bool { return f.Rel == "S" }))
	viaSemi, jStats, err := Run(4, reduced, join)
	if err != nil {
		t.Fatal(err)
	}
	if !direct.Equal(viaSemi) {
		t.Fatalf("semijoin-reduced plan changed the answer")
	}
	if jStats[0].TotalComm >= dStats[0].TotalComm {
		t.Errorf("reduction did not shrink the join shuffle: %d vs %d",
			jStats[0].TotalComm, dStats[0].TotalComm)
	}
}

// Pins the semi-naive linear plan's shipped volume on a fixed path
// graph. Path 0→…→8 (n = 8 edges): round r ships the frontier (the
// n−r+1 paths of length r) plus the n base edges, and the last
// productive round is r = n−1, with round n shipping only the final
// frontier fact plus edges and deriving nothing. TotalComm is
// therefore Σ_{r=1..n} (n−r+1+n) = n(n+1)/2 + n² = 36 + 64 = 100 —
// versus Σ_r (|TC_r| + n) ≈ 200 for the naive plan that re-ships the
// whole closure every round. A regression here means the linear plan
// stopped being semi-naive.
func TestTransitiveClosureLinearShipsOnlyFrontier(t *testing.T) {
	g := workload.PathGraph(8)
	res, err := TransitiveClosure(4, g, "E", false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Closure.Equal(SemiNaiveClosure(g, "E")) {
		t.Fatalf("closure wrong")
	}
	if res.Closure.Len() != 36 {
		t.Errorf("closure size = %d, want 36", res.Closure.Len())
	}
	if res.Rounds != 8 {
		t.Errorf("rounds = %d, want 8", res.Rounds)
	}
	tot := 0
	for _, s := range res.Stats {
		tot += s.TotalComm
	}
	if tot != 100 {
		t.Errorf("semi-naive linear TC shipped %d facts, want 100", tot)
	}
}
