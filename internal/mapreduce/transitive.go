package mapreduce

import (
	"mpclogic/internal/rel"
)

// This file implements transitive closure in MapReduce, following the
// Afrati-Ullman line of work the paper cites (Section 3.2): a linear
// strategy that joins the current closure with the base edges each
// round, and a nonlinear (doubling) strategy that joins the closure
// with itself, halving the number of rounds from O(n) to O(log n).

// TCResult reports the outcome of an iterated transitive-closure
// computation.
type TCResult struct {
	Closure *rel.Instance // relation TC(x, y)
	Rounds  int           // MapReduce jobs executed
	Stats   []Stats
}

// tcJoinJob joins left(x,y) with right(y,z) into out(x,z), keyed on
// the shared middle value.
func tcJoinJob(name, left, right, out string) Job {
	return Job{
		Name: name,
		Map: func(f rel.Fact) []Pair {
			switch f.Rel {
			case left:
				return []Pair{{Key: rel.Tuple{f.Tuple[1]}, Value: rel.NewFact("L", f.Tuple[0], f.Tuple[1])}}
			case right:
				return []Pair{{Key: rel.Tuple{f.Tuple[0]}, Value: rel.NewFact("Rr", f.Tuple[0], f.Tuple[1])}}
			}
			return nil
		},
		Reduce: func(_ rel.Tuple, values *rel.Instance) []rel.Fact {
			var outs []rel.Fact
			l := values.Relation("L")
			r := values.Relation("Rr")
			if l == nil || r == nil {
				return nil
			}
			l.Each(func(lt rel.Tuple) bool {
				r.Each(func(rt rel.Tuple) bool {
					outs = append(outs, rel.NewFact(out, lt[0], rt[1]))
					return true
				})
				return true
			})
			return outs
		},
	}
}

// TransitiveClosure computes the transitive closure of edge relation
// edgeRel in instance i using iterated MapReduce jobs on p reducers.
// With doubling=false it uses the semi-naive linear plan Δ := Δ ⋈ E
// each round, shipping only the frontier discovered last round; with
// doubling=true it squares the closure each round (TC := TC ⋈ TC),
// needing only ⌈log₂ diameter⌉ rounds.
//
// The semi-naive frontier changes nothing logically: a closure fact
// older than one round had its extensions derived in the round it was
// itself the frontier, so Δ ⋈ E and TC ⋈ E produce the same new facts
// and the two plans run the same number of rounds. What changes is the
// shipped volume — O(|Δ| + |E|) per round instead of O(|TC| + |E|).
// The doubling plan keeps shipping the full closure: its whole point
// is joining long paths with long paths, which the one-round-old
// frontier cannot do.
func TransitiveClosure(p int, i *rel.Instance, edgeRel string, doubling bool) (*TCResult, error) {
	res := &TCResult{Closure: rel.NewInstance()}
	edges := i.Relation(edgeRel)
	tc := rel.NewInstance()
	if edges != nil {
		edges.Each(func(t rel.Tuple) bool {
			tc.Add(rel.NewFact("TC", t[0], t[1]))
			return true
		})
	}
	delta := tc.Clone() // linear frontier; initially the base edges
	for {
		var job Job
		var in *rel.Instance
		if doubling {
			// Self-join TC with itself. Relation names must differ for
			// the join job, so mirror TC into TC2.
			in = rel.NewInstance()
			tc.Each(func(f rel.Fact) bool {
				in.Add(f)
				in.Add(rel.NewFact("TC2", f.Tuple[0], f.Tuple[1]))
				return true
			})
			job = tcJoinJob("tc-square", "TC", "TC2", "TC")
		} else {
			in = delta.Clone()
			if edges != nil {
				edges.Each(func(t rel.Tuple) bool {
					in.Add(rel.NewFact("E2", t[0], t[1]))
					return true
				})
			}
			job = tcJoinJob("tc-step", "TC", "E2", "TC")
		}
		out, stats, err := Run(p, in, job)
		if err != nil {
			return nil, err
		}
		res.Stats = append(res.Stats, stats...)
		res.Rounds++
		added := rel.NewInstance()
		out.Each(func(f rel.Fact) bool {
			if tc.Add(f) {
				added.Add(f)
			}
			return true
		})
		delta = added
		if added.IsEmpty() {
			break
		}
	}
	res.Closure = tc
	return res, nil
}

// SemiNaiveClosure is the centralized reference implementation used by
// the tests: classic semi-naive transitive closure.
func SemiNaiveClosure(i *rel.Instance, edgeRel string) *rel.Instance {
	out := rel.NewInstance()
	edges := i.Relation(edgeRel)
	if edges == nil {
		return out
	}
	// succ adjacency.
	succ := map[rel.Value][]rel.Value{}
	edges.Each(func(t rel.Tuple) bool {
		succ[t[0]] = append(succ[t[0]], t[1])
		return true
	})
	delta := edges.Tuples()
	for _, t := range delta {
		out.Add(rel.NewFact("TC", t[0], t[1]))
	}
	for len(delta) > 0 {
		var next []rel.Tuple
		for _, t := range delta {
			for _, z := range succ[t[1]] {
				f := rel.NewFact("TC", t[0], z)
				if out.Add(f) {
					next = append(next, rel.Tuple{t[0], z})
				}
			}
		}
		delta = next
	}
	return out
}
