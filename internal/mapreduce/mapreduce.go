// Package mapreduce implements the MapReduce formalism exactly as
// Section 3 of Neven (PODS 2016) presents it: a job is a pair (µ, ρ)
// of a map function producing key-value pairs and a reduce function
// processing each key group; a program is a sequence of jobs. As the
// paper notes, every MapReduce program is an algorithm within the MPC
// model — the map/shuffle stage is a communication phase and the
// reduce stage a computation phase — so the executor here performs the
// same load accounting as the MPC simulator: the load of a reducer is
// the number of values it receives.
package mapreduce

import (
	"fmt"

	"mpclogic/internal/cq"
	"mpclogic/internal/rel"
)

// Pair is a keyed value ⟨k : v⟩ emitted by a map function. Values are
// facts; keys are tuples.
type Pair struct {
	Key   rel.Tuple
	Value rel.Fact
}

// MapFunc is µ: it processes one input fact into key-value pairs.
type MapFunc func(rel.Fact) []Pair

// ReduceFunc is ρ: it processes one key group into output facts.
type ReduceFunc func(key rel.Tuple, values *rel.Instance) []rel.Fact

// Job is a MapReduce job (µ, ρ).
type Job struct {
	Name   string
	Map    MapFunc
	Reduce ReduceFunc
}

// Stats records the cost of one executed job, with the same load
// semantics as mpc.RoundStats.
type Stats struct {
	Job       string
	Received  []int
	MaxLoad   int
	TotalComm int
}

func (s Stats) String() string {
	return fmt.Sprintf("job %s: max load %d, total communication %d", s.Job, s.MaxLoad, s.TotalComm)
}

// Run executes a MapReduce program on p reducers: the output of each
// job is the input of the next, and the result of the final job is
// returned. Reducers are addressed by hashing keys.
func Run(p int, input *rel.Instance, jobs ...Job) (*rel.Instance, []Stats, error) {
	if p <= 0 {
		return nil, nil, fmt.Errorf("mapreduce: need at least one reducer")
	}
	cur := input
	var stats []Stats
	for _, job := range jobs {
		out, st, err := runJob(p, cur, job)
		if err != nil {
			return nil, stats, err
		}
		stats = append(stats, st)
		cur = out
	}
	return cur, stats, nil
}

func runJob(p int, input *rel.Instance, job Job) (*rel.Instance, Stats, error) {
	if job.Map == nil || job.Reduce == nil {
		return nil, Stats{}, fmt.Errorf("mapreduce: job %q missing map or reduce", job.Name)
	}
	type group struct {
		key    rel.Tuple
		values *rel.Instance
	}
	// Shuffle: group pairs by key; account received values per reducer.
	reducers := make([]map[string]*group, p)
	received := make([]int, p)
	for i := range reducers {
		reducers[i] = map[string]*group{}
	}
	input.Each(func(f rel.Fact) bool {
		for _, pr := range job.Map(f) {
			dst := int(pr.Key.Hash() % uint64(p))
			received[dst]++
			g, ok := reducers[dst][pr.Key.Key()]
			if !ok {
				g = &group{key: pr.Key, values: rel.NewInstance()}
				reducers[dst][pr.Key.Key()] = g
			}
			g.values.Add(pr.Value)
		}
		return true
	})
	out := rel.NewInstance()
	for _, groups := range reducers {
		for _, g := range groups {
			for _, f := range job.Reduce(g.key, g.values) {
				out.Add(f)
			}
		}
	}
	st := Stats{Job: job.Name, Received: received}
	for _, n := range received {
		st.TotalComm += n
		if n > st.MaxLoad {
			st.MaxLoad = n
		}
	}
	return out, st, nil
}

// JoinJob builds the classic repartition-join job for a two-atom
// query: µ keys each fact by its join-attribute values, ρ evaluates
// the query within each group. This is Example 3.1(1a) phrased as
// MapReduce.
func JoinJob(q *cq.CQ) (Job, error) {
	if len(q.Body) != 2 || q.HasNegation() {
		return Job{}, fmt.Errorf("mapreduce: JoinJob wants a two-atom positive query")
	}
	l, r := q.Body[0], q.Body[1]
	if l.Rel == r.Rel {
		return Job{}, fmt.Errorf("mapreduce: self-join %s not supported by JoinJob", l.Rel)
	}
	lPos := map[string]int{}
	for i, t := range l.Args {
		if t.IsVar() {
			if _, ok := lPos[t.Var]; !ok {
				lPos[t.Var] = i
			}
		}
	}
	var lCols, rCols []int
	seen := map[string]bool{}
	for i, t := range r.Args {
		if !t.IsVar() || seen[t.Var] {
			continue
		}
		if li, ok := lPos[t.Var]; ok {
			seen[t.Var] = true
			lCols = append(lCols, li)
			rCols = append(rCols, i)
		}
	}
	if len(lCols) == 0 {
		return Job{}, fmt.Errorf("mapreduce: atoms share no variables")
	}
	return Job{
		Name: "join " + l.Rel + "⋈" + r.Rel,
		Map: func(f rel.Fact) []Pair {
			switch f.Rel {
			case l.Rel:
				return []Pair{{Key: f.Tuple.Project(lCols), Value: f}}
			case r.Rel:
				return []Pair{{Key: f.Tuple.Project(rCols), Value: f}}
			}
			return nil
		},
		Reduce: func(_ rel.Tuple, values *rel.Instance) []rel.Fact {
			return cq.Output(q, values).Facts()
		},
	}, nil
}

// SemiJoinJob reduces relation left by relation right on the given
// column lists (left ⋉ right): µ keys both sides on the join values,
// ρ emits the left tuples of groups that also contain a right tuple.
// Together with JoinJob this gives the semi-join algebra fragment that
// Neven et al.'s distributed-streaming formalization of MapReduce
// expresses (Section 3.2's discussion of [47]).
func SemiJoinJob(left, right string, lCols, rCols []int) (Job, error) {
	if left == right {
		return Job{}, fmt.Errorf("mapreduce: semijoin needs distinct relation names")
	}
	if len(lCols) != len(rCols) {
		return Job{}, fmt.Errorf("mapreduce: column lists differ in length")
	}
	return Job{
		Name: "semijoin " + left + "⋉" + right,
		Map: func(f rel.Fact) []Pair {
			switch f.Rel {
			case left:
				return []Pair{{Key: f.Tuple.Project(lCols), Value: f}}
			case right:
				return []Pair{{Key: f.Tuple.Project(rCols), Value: f}}
			}
			return nil
		},
		Reduce: func(_ rel.Tuple, values *rel.Instance) []rel.Fact {
			r := values.Relation(right)
			if r == nil || r.Len() == 0 {
				return nil
			}
			var out []rel.Fact
			if l := values.Relation(left); l != nil {
				l.Each(func(t rel.Tuple) bool {
					out = append(out, rel.Fact{Rel: left, Tuple: t})
					return true
				})
			}
			return out
		},
	}, nil
}
