// Package mono model-checks the monotonicity hierarchy of Section 5.2
// of Neven (PODS 2016) over bounded instance spaces:
//
//	M  ⊊  Mdistinct  ⊊  Mdisjoint
//
// where Mdistinct weakens monotonicity to extensions J whose every
// fact carries a value outside adom(I) (queries preserved under
// extensions), and Mdisjoint weakens it further to J sharing no value
// with I. Membership in these classes is undecidable in general; the
// checkers here are exact over all instances drawn from a finite
// universe, which suffices both to verify the paper's membership
// examples and to find the separating witnesses of Figure 2.
package mono

import (
	"fmt"

	"mpclogic/internal/rel"
)

// Query is a generic query: any function from instances to instances.
// Wrappers for CQs and Datalog programs live next to their packages.
type Query func(*rel.Instance) *rel.Instance

// Report is the outcome of a bounded monotonicity check.
type Report struct {
	Holds bool
	// I and J witness the violation when Holds is false:
	// Q(I) ⊄ Q(I ∪ J).
	I, J *rel.Instance
	// Pairs is how many (I, J) pairs were checked.
	Pairs int
}

func (r *Report) String() string {
	if r.Holds {
		return fmt.Sprintf("holds (%d pairs checked)", r.Pairs)
	}
	return fmt.Sprintf("fails: Q(%v) ⊄ Q(%v ∪ %v)", r.I, r.I, r.J)
}

// checker enumerates instance pairs (I, J) with J drawn from the
// facts admitted by admissible(I, f) and reports whether
// Q(I) ⊆ Q(I ∪ J) always holds.
func check(q Query, schema rel.Schema, universe []rel.Value, admissible func(i *rel.Instance, f rel.Fact) bool, singleFactOnly bool) (*Report, error) {
	facts := schema.AllFacts(universe)
	if len(facts) > 20 {
		return nil, fmt.Errorf("mono: instance space 2^%d too large; shrink universe or schema", len(facts))
	}
	n := uint(len(facts))
	rep := &Report{Holds: true}

	// Memoize Q on demand (many masks repeat as I ∪ J).
	outputs := make(map[uint64]*rel.Instance)
	evalMask := func(mask uint64) *rel.Instance {
		if o, ok := outputs[mask]; ok {
			return o
		}
		inst := rel.NewInstance()
		for b := uint(0); b < n; b++ {
			if mask&(1<<b) != 0 {
				inst.Add(facts[b])
			}
		}
		o := q(inst)
		outputs[mask] = o
		return o
	}
	instOf := func(mask uint64) *rel.Instance {
		inst := rel.NewInstance()
		for b := uint(0); b < n; b++ {
			if mask&(1<<b) != 0 {
				inst.Add(facts[b])
			}
		}
		return inst
	}

	for iMask := uint64(0); iMask < 1<<n; iMask++ {
		i := instOf(iMask)
		// Candidate facts for J.
		var cand []uint
		for b := uint(0); b < n; b++ {
			if iMask&(1<<b) != 0 {
				continue
			}
			if admissible(i, facts[b]) {
				cand = append(cand, b)
			}
		}
		outI := evalMask(iMask)
		if singleFactOnly {
			for _, b := range cand {
				rep.Pairs++
				if !outI.SubsetOf(evalMask(iMask | 1<<b)) {
					rep.Holds = false
					rep.I = i
					rep.J = instOf(1 << b)
					return rep, nil
				}
			}
			continue
		}
		// All nonempty subsets of the candidates.
		c := uint(len(cand))
		for jSel := uint64(1); jSel < 1<<c; jSel++ {
			jMask := uint64(0)
			for b := uint(0); b < c; b++ {
				if jSel&(1<<b) != 0 {
					jMask |= 1 << cand[b]
				}
			}
			rep.Pairs++
			if !outI.SubsetOf(evalMask(iMask | jMask)) {
				rep.Holds = false
				rep.I = i
				rep.J = instOf(jMask)
				return rep, nil
			}
		}
	}
	return rep, nil
}

// IsMonotone checks plain monotonicity (class M) over the bounded
// instance space. Single-fact extensions suffice: monotone steps
// compose along any chain I ⊆ I∪{f1} ⊆ … ⊆ I∪J.
func IsMonotone(q Query, schema rel.Schema, universe []rel.Value) (*Report, error) {
	return check(q, schema, universe, func(*rel.Instance, rel.Fact) bool { return true }, true)
}

// IsDomainDistinctMonotone checks membership in Mdistinct
// (Definition 5.5): Q(I) ⊆ Q(I ∪ J) whenever every fact of J contains
// a value outside adom(I). Single steps do not suffice here (a later
// fact of J may share its fresh value with an earlier one), so all
// admissible J are enumerated.
func IsDomainDistinctMonotone(q Query, schema rel.Schema, universe []rel.Value) (*Report, error) {
	return check(q, schema, universe, func(i *rel.Instance, f rel.Fact) bool {
		adomI := i.ADom()
		for v := range f.ADom() {
			if !adomI.Contains(v) {
				return true
			}
		}
		return false // includes nullary facts: adom(f) ∖ adom(I) = ∅
	}, false)
}

// IsDomainDisjointMonotone checks membership in Mdisjoint
// (Definition 5.9): Q(I) ⊆ Q(I ∪ J) whenever adom(J) ∩ adom(I) = ∅.
// Note: J being domain disjoint from I is a property of J as a whole
// relative to I only, so per-fact admissibility is exact here.
func IsDomainDisjointMonotone(q Query, schema rel.Schema, universe []rel.Value) (*Report, error) {
	return check(q, schema, universe, func(i *rel.Instance, f rel.Fact) bool {
		return !f.ADom().Intersects(i.ADom())
	}, false)
}
