package mono

import (
	"mpclogic/internal/rel"
)

// This file implements the structural lemmas of Section 5.2 that power
// the coordination-free evaluation strategies: Lemma 5.7 (queries in
// Mdistinct are monotone with respect to induced subinstances) and
// Lemma 5.11 (queries in Mdisjoint are monotone with respect to
// components), plus bounded checkers used by the tests.

// CheckLemma57 verifies Q(I|C) ⊆ Q(I) for every instance I over the
// universe and every C ⊆ adom(I). Queries in Mdistinct must pass.
func CheckLemma57(q Query, schema rel.Schema, universe []rel.Value) (bool, *rel.Instance) {
	var bad *rel.Instance
	forEachInstance(schema, universe, func(i *rel.Instance) bool {
		adom := i.ADom().Sorted()
		n := uint(len(adom))
		for mask := uint64(0); mask < 1<<n; mask++ {
			c := make(rel.ValueSet)
			for b := uint(0); b < n; b++ {
				if mask&(1<<b) != 0 {
					c.Add(adom[b])
				}
			}
			if !q(i.Induced(c)).SubsetOf(q(i)) {
				bad = i.Clone()
				return false
			}
		}
		return true
	})
	return bad == nil, bad
}

// CheckLemma511 verifies Q(J) ⊆ Q(I) for every instance I over the
// universe and every component J of I. Queries in Mdisjoint must pass.
func CheckLemma511(q Query, schema rel.Schema, universe []rel.Value) (bool, *rel.Instance) {
	var bad *rel.Instance
	forEachInstance(schema, universe, func(i *rel.Instance) bool {
		for _, j := range rel.Components(i) {
			if !q(j).SubsetOf(q(i)) {
				bad = i.Clone()
				return false
			}
		}
		return true
	})
	return bad == nil, bad
}

// DistributesOverComponents checks Q(I) = ∪_J Q(J) over the components
// J of I, the property characterizing connected Datalog programs
// (Ameloot et al., ICDT 2015).
func DistributesOverComponents(q Query, schema rel.Schema, universe []rel.Value) (bool, *rel.Instance) {
	var bad *rel.Instance
	forEachInstance(schema, universe, func(i *rel.Instance) bool {
		union := rel.NewInstance()
		for _, j := range rel.Components(i) {
			union.AddAll(q(j))
		}
		if !union.Equal(q(i)) {
			bad = i.Clone()
			return false
		}
		return true
	})
	return bad == nil, bad
}

func forEachInstance(schema rel.Schema, universe []rel.Value, fn func(*rel.Instance) bool) {
	facts := schema.AllFacts(universe)
	n := uint(len(facts))
	if n > 20 {
		panic("mono: instance space too large")
	}
	for mask := uint64(0); mask < 1<<n; mask++ {
		inst := rel.NewInstance()
		for b := uint(0); b < n; b++ {
			if mask&(1<<b) != 0 {
				inst.Add(facts[b])
			}
		}
		if !fn(inst) {
			return
		}
	}
}
