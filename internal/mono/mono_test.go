package mono

import (
	"testing"

	"mpclogic/internal/cq"
	"mpclogic/internal/rel"
)

var eSchema = rel.Schema{"E": 2}

func u(n int) []rel.Value {
	out := make([]rel.Value, n)
	for i := range out {
		out[i] = rel.Value(i)
	}
	return out
}

// cqQuery wraps a CQ as a mono.Query.
func cqQuery(q *cq.CQ) Query {
	return func(i *rel.Instance) *rel.Instance { return cq.Output(q, i) }
}

func triangleQ(d *rel.Dict) Query {
	return cqQuery(cq.MustParse(d,
		"H(x, y, z) :- E(x, y), E(y, z), E(z, x), x != y, y != z, z != x"))
}

func openTriangleQ(d *rel.Dict) Query {
	return cqQuery(cq.MustParse(d, "H(x, y, z) :- E(x, y), E(y, z), not E(z, x)"))
}

// notTCQ is Q¬TC: all pairs over adom(I) with no directed path.
func notTCQ(i *rel.Instance) *rel.Instance {
	// Transitive closure by repeated squaring over the adjacency set.
	reach := map[[2]rel.Value]bool{}
	e := i.Relation("E")
	adom := i.ADom().Sorted()
	if e != nil {
		e.Each(func(t rel.Tuple) bool {
			reach[[2]rel.Value{t[0], t[1]}] = true
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for ab := range reach {
			for _, c := range adom {
				if reach[[2]rel.Value{ab[1], c}] && !reach[[2]rel.Value{ab[0], c}] {
					reach[[2]rel.Value{ab[0], c}] = true
					changed = true
				}
			}
		}
	}
	out := rel.NewInstance()
	for _, a := range adom {
		for _, b := range adom {
			if !reach[[2]rel.Value{a, b}] {
				out.Add(rel.NewFact("NTC", a, b))
			}
		}
	}
	return out
}

// qNT returns the edge relation when the graph has no 3-node triangle
// and the empty set otherwise (Example 5.10).
func qNT(i *rel.Instance) *rel.Instance {
	e := i.Relation("E")
	out := rel.NewInstance()
	if e == nil {
		return out
	}
	hasTri := false
	e.Each(func(t1 rel.Tuple) bool {
		e.Each(func(t2 rel.Tuple) bool {
			if t1[1] != t2[0] {
				return true
			}
			if e.Contains(rel.Tuple{t2[1], t1[0]}) &&
				t1[0] != t1[1] && t2[0] != t2[1] && t2[1] != t1[0] {
				hasTri = true
				return false
			}
			return true
		})
		return !hasTri
	})
	if hasTri {
		return out
	}
	e.Each(func(t rel.Tuple) bool {
		out.Add(rel.Fact{Rel: "E", Tuple: t})
		return true
	})
	return out
}

// Figure 2 separations, machine-verified.

func TestTriangleInM(t *testing.T) {
	d := rel.NewDict()
	rep, err := IsMonotone(triangleQ(d), eSchema, u(3))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Errorf("triangle query not monotone: %v", rep)
	}
}

func TestOpenTriangleInMdistinctNotM(t *testing.T) {
	d := rel.NewDict()
	q := openTriangleQ(d)
	repM, err := IsMonotone(q, eSchema, u(3))
	if err != nil {
		t.Fatal(err)
	}
	if repM.Holds {
		t.Errorf("open triangle reported monotone; it is not")
	}
	repD, err := IsDomainDistinctMonotone(q, eSchema, u(3))
	if err != nil {
		t.Fatal(err)
	}
	if !repD.Holds {
		t.Errorf("open triangle not in Mdistinct (Example 5.6 says it is): %v", repD)
	}
}

func TestNotTCInMdisjointNotMdistinct(t *testing.T) {
	repD, err := IsDomainDistinctMonotone(notTCQ, eSchema, u(3))
	if err != nil {
		t.Fatal(err)
	}
	if repD.Holds {
		t.Errorf("¬TC reported in Mdistinct; Example 5.6 refutes this")
	}
	repJ, err := IsDomainDisjointMonotone(notTCQ, eSchema, u(3))
	if err != nil {
		t.Fatal(err)
	}
	if !repJ.Holds {
		t.Errorf("¬TC not in Mdisjoint (Example 5.10 says it is): %v", repJ)
	}
}

func TestQNTNotInMdisjoint(t *testing.T) {
	rep, err := IsDomainDisjointMonotone(qNT, eSchema, u(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Holds {
		t.Errorf("QNT reported in Mdisjoint; Example 5.10 refutes this")
	}
	// The witness must actually violate disjoint-monotonicity.
	if rep.I == nil || rep.J == nil {
		t.Fatalf("no witness")
	}
	if rep.I.ADom().Intersects(rep.J.ADom()) {
		t.Errorf("witness J not domain-disjoint from I")
	}
	if qNT(rep.I).SubsetOf(qNT(rep.I.Union(rep.J))) {
		t.Errorf("witness does not violate")
	}
}

// The hierarchy is a chain: M ⊆ Mdistinct ⊆ Mdisjoint on a portfolio
// of queries.
func TestHierarchyChain(t *testing.T) {
	d := rel.NewDict()
	queries := []Query{
		triangleQ(d),
		openTriangleQ(d),
		notTCQ,
		qNT,
		cqQuery(cq.MustParse(d, "H(x) :- E(x, x)")),
		cqQuery(cq.MustParse(d, "H(x, y) :- E(x, y), not E(y, x)")),
	}
	for k, q := range queries {
		m, err := IsMonotone(q, eSchema, u(3))
		if err != nil {
			t.Fatal(err)
		}
		dd, err := IsDomainDistinctMonotone(q, eSchema, u(3))
		if err != nil {
			t.Fatal(err)
		}
		dj, err := IsDomainDisjointMonotone(q, eSchema, u(3))
		if err != nil {
			t.Fatal(err)
		}
		if m.Holds && !dd.Holds {
			t.Errorf("query %d: in M but not Mdistinct", k)
		}
		if dd.Holds && !dj.Holds {
			t.Errorf("query %d: in Mdistinct but not Mdisjoint", k)
		}
	}
}

// Lemma 5.7: Mdistinct queries are monotone under induced
// subinstances.
func TestLemma57(t *testing.T) {
	d := rel.NewDict()
	ok, bad := CheckLemma57(openTriangleQ(d), eSchema, u(3))
	if !ok {
		t.Errorf("Lemma 5.7 fails for open triangle on %v", bad)
	}
	ok, _ = CheckLemma57(triangleQ(d), eSchema, u(3))
	if !ok {
		t.Errorf("Lemma 5.7 fails for triangle")
	}
}

// Lemma 5.11: Mdisjoint queries are monotone w.r.t. components.
func TestLemma511(t *testing.T) {
	ok, bad := CheckLemma511(notTCQ, eSchema, u(3))
	if !ok {
		t.Errorf("Lemma 5.11 fails for ¬TC on %v", bad)
	}
	// QNT is not in Mdisjoint and indeed violates component
	// monotonicity.
	ok, _ = CheckLemma511(qNT, eSchema, u(4))
	if ok {
		t.Errorf("Lemma 5.11 unexpectedly holds for QNT")
	}
}

// Connected-program property: TC distributes over components; ¬TC does
// not (its output relates values across components).
func TestDistributesOverComponents(t *testing.T) {
	tc := func(i *rel.Instance) *rel.Instance {
		// complement-of-complement: reuse notTCQ internals by direct
		// closure computation.
		out := rel.NewInstance()
		ntc := notTCQ(i)
		adom := i.ADom().Sorted()
		for _, a := range adom {
			for _, b := range adom {
				f := rel.NewFact("NTC", a, b)
				if !ntc.Contains(f) {
					out.Add(rel.NewFact("TC", a, b))
				}
			}
		}
		return out
	}
	ok, bad := DistributesOverComponents(tc, eSchema, u(3))
	if !ok {
		t.Errorf("TC does not distribute over components: %v", bad)
	}
	ok, _ = DistributesOverComponents(notTCQ, eSchema, u(3))
	if ok {
		t.Errorf("¬TC distributes over components, but its output spans components")
	}
}

func TestSpaceGuard(t *testing.T) {
	if _, err := IsMonotone(notTCQ, rel.Schema{"E": 2}, u(5)); err == nil {
		t.Errorf("oversized space accepted")
	}
}
