package mpclogic

// One benchmark per reproduced figure / quantitative claim of the
// paper (see DESIGN.md's experiment index). Domain metrics — maximum
// load, total communication, messages, rounds — are attached with
// b.ReportMetric so `go test -bench=. -benchmem` regenerates the
// numbers behind EXPERIMENTS.md.

import (
	"fmt"
	"math"
	mathrand "math/rand"
	"testing"

	"mpclogic/internal/cq"
	"mpclogic/internal/datalog"
	"mpclogic/internal/gym"
	"mpclogic/internal/hypercube"
	"mpclogic/internal/mapreduce"
	"mpclogic/internal/mono"
	"mpclogic/internal/mpc"
	"mpclogic/internal/pc"
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
	"mpclogic/internal/scale"
	"mpclogic/internal/stream"
	"mpclogic/internal/transducer"
	"mpclogic/internal/workload"
)

// newDetRand returns a deterministic rand for bench data generation.
func newDetRand(seed int64) *mathrand.Rand { return mathrand.New(mathrand.NewSource(seed)) }

func triangleQ(d *rel.Dict) *cq.CQ {
	return cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
}

func joinQ(d *rel.Dict) *cq.CQ {
	return cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z)")
}

func runLoadOnly(b *testing.B, p int, inst *rel.Instance, r mpc.Round, opts ...mpc.Option) *mpc.Cluster {
	b.Helper()
	r.Compute = nil
	c := mpc.NewCluster(p, opts...)
	c.LoadRoundRobin(inst)
	if err := c.Run(r); err != nil {
		b.Fatal(err)
	}
	return c
}

// verifyStride is the sampling stride the *Verified benchmark variants
// run with: every 16th delivery is re-checked against the round's
// routing contract on the receiver. benchdiff pairs each Verified
// benchmark with its unverified twin (-overhead-suffix) and bounds the
// ns/op ratio, so the cost of always-on verification stays priced.
const verifyStride = 16

// EXP-F1: the Figure 1 transfer matrix (Πᵖ₃-shaped decision ×12).
func BenchmarkFigure1Transfer(b *testing.B) {
	d := rel.NewDict()
	qs := []*cq.CQ{
		cq.MustParse(d, "H() :- S(x), R(x, x), T(x)"),
		cq.MustParse(d, "H() :- R(x, x), T(x)"),
		cq.MustParse(d, "H() :- S(x), R(x, y), T(y)"),
		cq.MustParse(d, "H() :- R(x, y), T(y)"),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, qi := range qs {
			for _, qj := range qs {
				if _, _, err := pc.Transfers(qi, qj); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// EXP-F2: bounded classification of a query in the Figure 2 hierarchy.
func BenchmarkFigure2Classify(b *testing.B) {
	d := rel.NewDict()
	open := cq.MustParse(d, "H(x, y, z) :- E(x, y), E(y, z), not E(z, x)")
	q := func(i *rel.Instance) *rel.Instance { return cq.Output(open, i) }
	schema := rel.Schema{"E": 2}
	u := []rel.Value{0, 1, 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mono.IsDomainDistinctMonotone(q, schema, u); err != nil {
			b.Fatal(err)
		}
	}
}

// EXP-3.1a: repartition join, skew-free vs skewed load.
func BenchmarkRepartitionJoinSkewFree(b *testing.B) {
	benchJoinLoad(b, workload.JoinSkewFree(20000), func(q *cq.CQ, p int) (mpc.Round, error) {
		return hypercube.RepartitionJoin(q, p, 7)
	})
}

func BenchmarkRepartitionJoinSkewed(b *testing.B) {
	benchJoinLoad(b, workload.JoinSkewed(20000, 0.5), func(q *cq.CQ, p int) (mpc.Round, error) {
		return hypercube.RepartitionJoin(q, p, 7)
	})
}

// EXP-BYZ (overhead half): the skew-free repartition join with sampled
// receiver-side routing verification — the Verified twin of
// BenchmarkRepartitionJoinSkewFree that verify-perf prices.
func BenchmarkRepartitionJoinSkewFreeVerified(b *testing.B) {
	benchJoinLoad(b, workload.JoinSkewFree(20000), func(q *cq.CQ, p int) (mpc.Round, error) {
		return hypercube.RepartitionJoin(q, p, 7)
	}, mpc.WithRoutingVerification(verifyStride))
}

// EXP-3.1b: grouping join under skew.
func BenchmarkGroupingJoinSkewed(b *testing.B) {
	benchJoinLoad(b, workload.JoinSkewed(20000, 0.5), func(q *cq.CQ, p int) (mpc.Round, error) {
		return hypercube.GroupingJoin(q, p, 7)
	})
}

// EXP-SKEW (1-round half): SharesSkew-style router under skew.
func BenchmarkSkewAwareJoin(b *testing.B) {
	inst := workload.JoinSkewed(20000, 0.5)
	heavy := rel.NewValueSet(workload.HeavyHitters(inst, "R", 1, 20000/64)...)
	benchJoinLoad(b, inst, func(q *cq.CQ, p int) (mpc.Round, error) {
		return hypercube.SkewAwareJoin(q, p, heavy, 7)
	})
}

func benchJoinLoad(b *testing.B, inst *rel.Instance, mk func(*cq.CQ, int) (mpc.Round, error), opts ...mpc.Option) {
	b.Helper()
	d := rel.NewDict()
	q := joinQ(d)
	const p = 64
	// Round construction is pure planning (share optimization, router
	// closure setup); build it once so the timed loop measures round
	// execution — routing, delivery, accounting — not planning.
	r, err := mk(q, p)
	if err != nil {
		b.Fatal(err)
	}
	var last *mpc.Cluster
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = runLoadOnly(b, p, inst, r, opts...)
	}
	b.ReportMetric(float64(last.MaxLoad()), "maxload")
	b.ReportMetric(float64(last.TotalComm()), "totalcomm")
}

// EXP-3.1c: two-round cascaded triangle.
func BenchmarkCascadeTriangle(b *testing.B) {
	inst := workload.TriangleSkewFree(5000)
	var last *mpc.Cluster
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, _, err := gym.CascadeTriangle(64, inst, 3)
		if err != nil {
			b.Fatal(err)
		}
		last = c
	}
	b.ReportMetric(float64(last.MaxLoad()), "maxload")
	b.ReportMetric(float64(last.Rounds()), "rounds")
}

// EXP-3.2: HyperCube triangle load across p (the paper's headline
// one-round bound m/p^{2/3}).
func BenchmarkHyperCubeTriangle(b *testing.B) {
	d := rel.NewDict()
	q := triangleQ(d)
	m := 20000
	inst := workload.TriangleSkewFree(m)
	for _, p := range []int{8, 64, 512} {
		p := p
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			g, err := hypercube.NewOptimalGrid(q, p, 11)
			if err != nil {
				b.Fatal(err)
			}
			var last *mpc.Cluster
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				last = runLoadOnly(b, g.P(), inst, hypercube.HyperCubeRound(g))
			}
			b.ReportMetric(float64(last.MaxLoad()), "maxload")
			b.ReportMetric(3*float64(m)/math.Pow(float64(p), 2.0/3.0), "bound")
		})
	}
}

// EXP-BYZ (overhead half): the HyperCube triangle at the middle server
// count with sampled receiver-side routing verification — paired by
// benchdiff with BenchmarkHyperCubeTriangle/p=64.
func BenchmarkHyperCubeTriangleVerified(b *testing.B) {
	d := rel.NewDict()
	q := triangleQ(d)
	m := 20000
	inst := workload.TriangleSkewFree(m)
	b.Run("p=64", func(b *testing.B) {
		g, err := hypercube.NewOptimalGrid(q, 64, 11)
		if err != nil {
			b.Fatal(err)
		}
		var last *mpc.Cluster
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			last = runLoadOnly(b, g.P(), inst, hypercube.HyperCubeRound(g), mpc.WithRoutingVerification(verifyStride))
		}
		b.ReportMetric(float64(last.MaxLoad()), "maxload")
		b.ReportMetric(3*float64(m)/math.Pow(64, 2.0/3.0), "bound")
	})
}

// EXP-SHARES: share optimization (LP + integer repair).
func BenchmarkShareOptimization(b *testing.B) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z, w) :- R(x, y), S(y, z), T(z, w), U(w, x)")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := hypercube.OptimalShares(q, 256); err != nil {
			b.Fatal(err)
		}
	}
}

// EXP-SKEW (2-round half): skewed triangle, one round vs two.
func BenchmarkSkewTriangle(b *testing.B) {
	d := rel.NewDict()
	q := triangleQ(d)
	m, p := 20000, 64
	inst := workload.TriangleSkewed(m, 0.5)
	heavy := rel.NewValueSet(workload.HeavyHitters(inst, "R", 1, m/16)...)
	g, err := hypercube.NewOptimalGrid(q, p, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("one-round", func(b *testing.B) {
		var last *mpc.Cluster
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			last = runLoadOnly(b, g.P(), inst, hypercube.HyperCubeRound(g))
		}
		b.ReportMetric(float64(last.MaxLoad()), "maxload")
	})
	b.Run("two-rounds", func(b *testing.B) {
		var last *mpc.Cluster
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c, _, err := gym.SkewTriangleTwoRound(p, inst, heavy, 5, g)
			if err != nil {
				b.Fatal(err)
			}
			last = c
		}
		b.ReportMetric(float64(last.MaxLoad()), "maxload")
	})
}

// EXP-T48: parallel-correctness decision cost growth (Πᵖ₂ shadow).
func BenchmarkPCDecision(b *testing.B) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, z) :- R(x, y), R(y, z), R(x, x)")
	for _, n := range []int{2, 4, 8} {
		n := n
		b.Run(fmt.Sprintf("universe=%d", n), func(b *testing.B) {
			u := make([]rel.Value, n)
			for i := range u {
				u[i] = rel.Value(i)
			}
			pol := &policy.Replicate{Nodes: 2}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := pc.Saturates(q, pol, u); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// EXP-CQNEG: bounded CQ¬ parallel-correctness check.
func BenchmarkCQNegPC(b *testing.B) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x) :- R(x), not S(x)")
	pol := &policy.Replicate{Nodes: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pc.ParallelCorrectNegBounded(q, pol, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// EXP-GYM: Yannakakis vs cascade on dangling-heavy data.
func BenchmarkYannakakis(b *testing.B) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(a, dd) :- R0(a, b), R1(b, c), R2(c, dd)")
	inst := hubInstance(400, 10)
	b.Run("yannakakis", func(b *testing.B) {
		var st *gym.Stats
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, s, err := gym.Yannakakis(q, inst)
			if err != nil {
				b.Fatal(err)
			}
			st = s
		}
		b.ReportMetric(float64(st.MaxIntermediate), "max-intermediate")
	})
	b.Run("cascade", func(b *testing.B) {
		var st *gym.Stats
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, s, err := gym.CascadeJoin(q, inst)
			if err != nil {
				b.Fatal(err)
			}
			st = s
		}
		b.ReportMetric(float64(st.MaxIntermediate), "max-intermediate")
	})
}

func hubInstance(fan, keep int) *rel.Instance {
	inst := rel.NewInstance()
	hub := rel.Value(1 << 30)
	for i := 0; i < fan; i++ {
		inst.Add(rel.NewFact("R0", rel.Value(i), hub))
		inst.Add(rel.NewFact("R1", hub, rel.Value(10000+i)))
	}
	for j := 0; j < keep; j++ {
		inst.Add(rel.NewFact("R2", rel.Value(10000+j), rel.Value(20000+j)))
	}
	return inst
}

// EXP-GYM (distributed): GYM on the triangle.
func BenchmarkGYMTriangle(b *testing.B) {
	d := rel.NewDict()
	q := triangleQ(d)
	inst := workload.TriangleSkewFree(2000)
	var last *mpc.Cluster
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, _, _, err := gym.GYM(q, 16, inst, 5)
		if err != nil {
			b.Fatal(err)
		}
		last = c
	}
	b.ReportMetric(float64(last.Rounds()), "rounds")
	b.ReportMetric(float64(last.TotalComm()), "totalcomm")
}

// EXP-MR: MapReduce transitive closure, linear vs doubling.
func BenchmarkMapReduceTC(b *testing.B) {
	g := workload.PathGraph(64)
	b.Run("linear", func(b *testing.B) {
		var res *mapreduce.TCResult
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := mapreduce.TransitiveClosure(8, g, "E", false)
			if err != nil {
				b.Fatal(err)
			}
			res = r
		}
		b.ReportMetric(float64(res.Rounds), "jobs")
	})
	b.Run("doubling", func(b *testing.B) {
		var res *mapreduce.TCResult
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := mapreduce.TransitiveClosure(8, g, "E", true)
			if err != nil {
				b.Fatal(err)
			}
			res = r
		}
		b.ReportMetric(float64(res.Rounds), "jobs")
	})
}

// EXP-CALM / EXP-BCAST: transducer-network communication, naive vs
// economical broadcast.
func BenchmarkBroadcast(b *testing.B) {
	d := rel.NewDict()
	triQ := cq.MustParse(d, "H(x, y, z) :- E(x, y), E(y, z), E(z, x), x != y, y != z, z != x")
	tri := func(i *rel.Instance) *rel.Instance { return cq.Output(triQ, i) }
	g := workload.RandomGraph(20, 60, 13)
	ballast := workload.Zipf("Noise", 200, 50, 1.2, 1)
	full := g.Union(ballast)
	parts := policy.Distribute(&policy.Hash{Nodes: 4}, full)
	run := func(b *testing.B, mk func() transducer.Program) {
		var st transducer.Stats
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := transducer.New(4, mk, transducer.WithSeed(4))
			if err := n.LoadParts(parts); err != nil {
				b.Fatal(err)
			}
			s, err := n.Run()
			if err != nil {
				b.Fatal(err)
			}
			st = s
		}
		b.ReportMetric(float64(st.Sent), "msgs")
	}
	b.Run("naive", func(b *testing.B) {
		run(b, func() transducer.Program { return &transducer.MonotoneBroadcast{Q: tri} })
	})
	b.Run("economical", func(b *testing.B) {
		run(b, func() transducer.Program {
			return &transducer.EconomicalBroadcast{Q: tri, Matches: func(f rel.Fact) bool { return f.Rel == "E" }}
		})
	})
}

// EXP-5.12: domain-guided ¬TC network.
func BenchmarkDisjointCompleteNotTC(b *testing.B) {
	g := workload.ComponentsGraph(4, 4)
	pol := &policy.DomainGuided{Nodes: 4, DefaultWidth: 1}
	var st transducer.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := transducer.New(4, func() transducer.Program {
			return &transducer.DisjointComplete{Q: benchNotTC}
		}, transducer.WithSeed(int64(i)), transducer.WithPolicy(pol))
		if err := n.LoadPolicy(g, pol); err != nil {
			b.Fatal(err)
		}
		s, err := n.Run()
		if err != nil {
			b.Fatal(err)
		}
		st = s
	}
	b.ReportMetric(float64(st.Sent), "msgs")
}

func benchNotTC(i *rel.Instance) *rel.Instance {
	reach := map[[2]rel.Value]bool{}
	adom := i.ADom().Sorted()
	if e := i.Relation("E"); e != nil {
		e.Each(func(t rel.Tuple) bool {
			reach[[2]rel.Value{t[0], t[1]}] = true
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for ab := range reach {
			for _, c := range adom {
				if reach[[2]rel.Value{ab[1], c}] && !reach[[2]rel.Value{ab[0], c}] {
					reach[[2]rel.Value{ab[0], c}] = true
					changed = true
				}
			}
		}
	}
	out := rel.NewInstance()
	for _, a := range adom {
		for _, bb := range adom {
			if !reach[[2]rel.Value{a, bb}] {
				out.Add(rel.NewFact("NTC", a, bb))
			}
		}
	}
	return out
}

// Substrate benchmarks: local CQ evaluation and Datalog fixpoints,
// the computation-phase costs under all of the above.
func BenchmarkCQEvaluateTriangle(b *testing.B) {
	d := rel.NewDict()
	q := triangleQ(d)
	inst := workload.TriangleSkewFree(20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cq.Evaluate(q, inst).Len() != 20000 {
			b.Fatal("wrong result")
		}
	}
}

func BenchmarkDatalogTransitiveClosure(b *testing.B) {
	d := rel.NewDict()
	p := datalog.MustParse(d, "TC(x, y) :- E(x, y)\nTC(x, y) :- TC(x, z), E(z, y)")
	g := workload.CycleGraph(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := datalog.EvalQuery(p, g, "TC")
		if err != nil {
			b.Fatal(err)
		}
		if out.Len() != 10000 {
			b.Fatalf("closure size %d", out.Len())
		}
	}
}

func BenchmarkMinimalValuations(b *testing.B) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, z) :- R(x, y), R(y, z), R(x, x)")
	u := []rel.Value{0, 1, 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cq.MinimalValuations(q, u); err != nil {
			b.Fatal(err)
		}
	}
}

// ——— Ablation benchmarks: the design choices DESIGN.md calls out ———

// Ablation: LP-optimal shares vs uniform shares for the binary join
// at p=216. The optimum concentrates the whole budget on the join
// variable y (load 2m/p); uniform shares replicate each relation
// p^{1/3} times and co-locate only p^{1/3} of the budget on y, so the
// load is ~p^{2/3}/2 times worse.
func BenchmarkAblationShareAllocation(b *testing.B) {
	d := rel.NewDict()
	q := joinQ(d)
	m, p := 20000, 216
	inst := workload.JoinSkewFree(m)
	bench := func(b *testing.B, shares map[string]int) {
		g, err := hypercube.NewGrid(q, shares, 11)
		if err != nil {
			b.Fatal(err)
		}
		var last *mpc.Cluster
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			last = runLoadOnly(b, g.P(), inst, hypercube.HyperCubeRound(g))
		}
		b.ReportMetric(float64(last.MaxLoad()), "maxload")
	}
	b.Run("optimal", func(b *testing.B) {
		shares, _, err := hypercube.OptimalShares(q, p)
		if err != nil {
			b.Fatal(err)
		}
		bench(b, shares)
	})
	b.Run("uniform", func(b *testing.B) {
		bench(b, map[string]int{"x": 6, "y": 6, "z": 6})
	})
}

// Ablation: the avalanche finalizer in the partition hash. Without it,
// values differing only in a high byte (exactly what block-structured
// generators produce) have hashes with a constant 64-bit difference,
// so per-dimension coordinates correlate and grid cells load up
// diagonally. The raw-FNV router below reproduces the pathology the
// finalizer fixes.
func BenchmarkAblationHashFinalizer(b *testing.B) {
	m, p := 20000, 16 // 4×4 grid over (x, y)
	inst := workload.JoinSkewFree(m)
	rawFNV := func(v rel.Value) uint64 {
		const prime = 1099511628211
		h := uint64(14695981039346656037)
		u := uint64(v)
		for i := 0; i < 8; i++ {
			h ^= u & 0xff
			h *= prime
			u >>= 8
		}
		return h
	}
	route := func(hash func(rel.Value) uint64) mpc.Router {
		return mpc.RouterFunc(func(f rel.Fact) []int {
			// Grid cell (hx(col0) mod 4, hy(col1) mod 4).
			hx := int(hash(f.Tuple[0]) % 4)
			hy := int(hash(f.Tuple[1]) % 4)
			return []int{hx*4 + hy}
		})
	}
	bench := func(b *testing.B, r mpc.Router) {
		var last *mpc.Cluster
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			last = runLoadOnly(b, p, inst, mpc.Round{Route: r})
		}
		b.ReportMetric(float64(last.MaxLoad()), "maxload")
		b.ReportMetric(float64(2*m)/float64(p), "uniform-ref")
	}
	b.Run("avalanched", func(b *testing.B) {
		bench(b, route(func(v rel.Value) uint64 { return (rel.Tuple{v}).Hash() }))
	})
	b.Run("raw-fnv", func(b *testing.B) {
		bench(b, route(rawFNV))
	})
}

// Ablation: Yannakakis with vs without the semijoin full reduction —
// projection discipline alone does not control intermediates on
// dangling-heavy data.
func BenchmarkAblationSemijoinReduction(b *testing.B) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(a, dd) :- R0(a, b), R1(b, c), R2(c, dd)")
	inst := hubInstance(400, 10)
	for _, reduce := range []bool{true, false} {
		reduce := reduce
		name := "with-reduction"
		if !reduce {
			name = "without-reduction"
		}
		b.Run(name, func(b *testing.B) {
			var st *gym.Stats
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, s, err := gym.YannakakisWith(q, inst, reduce)
				if err != nil {
					b.Fatal(err)
				}
				st = s
			}
			b.ReportMetric(float64(st.MaxIntermediate), "max-intermediate")
		})
	}
}

// Ablation: the tractable full-query transfer path vs the general
// minimality-checking path (Theorem 4.14's complexity discussion).
func BenchmarkAblationTransferFullPath(b *testing.B) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	qp := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z)")
	b.Run("full-fast-path", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := pc.CoversFull(q, qp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("general-path", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := pc.Covers(q, qp); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// EXP-CBS: worst-case-optimal generic join vs the binary-join plan on
// the classic adversarial triangle instance where EVERY pairwise join
// is quadratic (n² intermediate) yet the output is Θ(n) — the regime
// where Chu-Balazinska-Suciu pair HyperCube with a worst-case-optimal
// local algorithm.
func BenchmarkGenericJoin(b *testing.B) {
	d := rel.NewDict()
	q := triangleQ(d)
	n := 300
	a := func(i int) rel.Value { return rel.Value(i) }
	bb := func(i int) rel.Value { return rel.Value(100000 + i) }
	cc := func(i int) rel.Value { return rel.Value(200000 + i) }
	fan := rel.NewInstance()
	fan.Add(rel.NewFact("R", a(0), bb(0)))
	fan.Add(rel.NewFact("S", bb(0), cc(0)))
	fan.Add(rel.NewFact("T", cc(0), a(0)))
	for i := 1; i <= n; i++ {
		fan.Add(rel.NewFact("R", a(i), bb(0)))
		fan.Add(rel.NewFact("R", a(0), bb(i)))
		fan.Add(rel.NewFact("S", bb(i), cc(0)))
		fan.Add(rel.NewFact("S", bb(0), cc(i)))
		fan.Add(rel.NewFact("T", cc(i), a(0)))
		fan.Add(rel.NewFact("T", cc(0), a(i)))
	}
	wantLen := 3*n + 1
	b.Run("worst-case-optimal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := cq.GenericJoin(q, fan)
			if err != nil || out.Len() != wantLen {
				b.Fatalf("%v / %d (want %d)", err, out.Len(), wantLen)
			}
		}
	})
	b.Run("binary-join-plan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if cq.Evaluate(q, fan).Len() != wantLen {
				b.Fatal("wrong result")
			}
		}
	})
}

// ——— Sustained-update ingestion: delta rounds + ApplyUpdate ———
//
// The headline perf numbers of the incremental engine: facts/sec while
// maintaining a view under update batches, against from-scratch
// re-evaluation of the same final input. Every iteration applies an
// identically-shaped batch on fresh values, so the per-iteration
// domain metrics (deltacomm, rounds) are exact constants that
// benchdiff pins, while facts/sec carries the throughput claim (the
// "/sec" suffix marks it higher-is-better). The acceptance shape: incr
// beats scratch by ≥10x at the small batch sizes, converging as the
// batch grows to dominate the resident state.

// tcMaintainBatch builds one update batch for the maintained-TC
// benchmarks: `size` fresh sources all pointing at node 197 of the
// resident 200-path, so each edge's consequences are exactly 4 closure
// facts (→198, 199, 200) and 4 delta rounds, independent of how much
// state has accumulated.
func tcMaintainBatch(iter, size int) *rel.Instance {
	b := rel.NewInstance()
	for k := 0; k < size; k++ {
		u := rel.Value(1<<21 + iter*size + k)
		b.Add(rel.NewFact("E", u, 197))
	}
	return b
}

func BenchmarkTCMaintain(b *testing.B) {
	const p, seed = 5, 11
	base := workload.PathGraph(200)
	for _, size := range []int{1, 100, 10000} {
		size := size
		b.Run(fmt.Sprintf("incr/batch=%d", size), func(b *testing.B) {
			c, err := gym.DeltaTC(p, base, seed)
			if err != nil {
				b.Fatal(err)
			}
			comm0, rounds0 := c.DeltaCommTotal(), c.Rounds()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.ApplyUpdate(tcMaintainBatch(i, size)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "facts/sec")
			b.ReportMetric(float64(c.DeltaCommTotal()-comm0)/float64(b.N), "deltacomm")
			b.ReportMetric(float64(c.Rounds()-rounds0)/float64(b.N), "rounds")
		})
		b.Run(fmt.Sprintf("scratch/batch=%d", size), func(b *testing.B) {
			full := base.Clone()
			full.AddAll(tcMaintainBatch(0, size))
			var last *mpc.Cluster
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := gym.DeltaTC(p, full, seed)
				if err != nil {
					b.Fatal(err)
				}
				last = c
			}
			b.StopTimer()
			b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "facts/sec")
			b.ReportMetric(float64(last.TotalComm()), "totalcomm")
			b.ReportMetric(float64(last.Rounds()), "rounds")
		})
	}
}

// triMaintainBatch builds one update batch for the maintained cascade
// triangle view: `triples` complete fresh triangles (3 facts each) on
// values disjoint from the base blocks, so every triple derives
// exactly one K fact and one H fact in the fixed 2-round cascade.
func triMaintainBatch(iter, triples int) *rel.Instance {
	b := rel.NewInstance()
	for k := 0; k < triples; k++ {
		j := rel.Value(1<<21 + iter*triples + k)
		x := rel.Value(1<<30) + j
		y := rel.Value(1<<30+1<<26) + j
		z := rel.Value(1<<30+2<<26) + j
		b.Add(rel.NewFact("R", x, y))
		b.Add(rel.NewFact("S", y, z))
		b.Add(rel.NewFact("T", z, x))
	}
	return b
}

func BenchmarkTriangleMaintain(b *testing.B) {
	const p, seed = 6, 11
	base := workload.TriangleSkewFree(2000)
	for _, triples := range []int{1, 33, 3333} {
		triples := triples
		facts := 3 * triples
		b.Run(fmt.Sprintf("incr/facts=%d", facts), func(b *testing.B) {
			c, err := gym.DeltaCascadeTriangle(p, base, seed)
			if err != nil {
				b.Fatal(err)
			}
			comm0, rounds0 := c.DeltaCommTotal(), c.Rounds()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.ApplyUpdate(triMaintainBatch(i, triples)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(facts)*float64(b.N)/b.Elapsed().Seconds(), "facts/sec")
			b.ReportMetric(float64(c.DeltaCommTotal()-comm0)/float64(b.N), "deltacomm")
			b.ReportMetric(float64(c.Rounds()-rounds0)/float64(b.N), "rounds")
		})
		b.Run(fmt.Sprintf("scratch/facts=%d", facts), func(b *testing.B) {
			full := base.Clone()
			full.AddAll(triMaintainBatch(0, triples))
			var last *mpc.Cluster
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := gym.DeltaCascadeTriangle(p, full, seed)
				if err != nil {
					b.Fatal(err)
				}
				last = c
			}
			b.StopTimer()
			b.ReportMetric(float64(facts)*float64(b.N)/b.Elapsed().Seconds(), "facts/sec")
			b.ReportMetric(float64(last.TotalComm()), "totalcomm")
			b.ReportMetric(float64(last.Rounds()), "rounds")
		})
	}
}

// EXP-STREAM: finite-memory streaming semijoin over a skewed stream.
func BenchmarkStreamSemiJoin(b *testing.B) {
	inst := workload.JoinSkewed(50000, 0.5)
	facts := inst.Facts()
	n := &stream.Network{
		Machines:  8,
		Key:       stream.KeyOn(map[string][]int{"R": {1}, "S": {0}}),
		Automaton: stream.SemiJoin("R", "S"),
	}
	var st *stream.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, s, err := n.Run(facts)
		if err != nil {
			b.Fatal(err)
		}
		st = s
	}
	b.ReportMetric(float64(st.MemoryPerGroup), "mem-per-group")
	b.ReportMetric(float64(st.LargestGroup), "largest-group")
}

// EXP-SCALE: bounded plan execution vs full evaluation on a large
// graph.
func BenchmarkScaleIndependence(b *testing.B) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(y, z) :- Follows(0, y), Follows(y, z)")
	cons := scale.Constraints{{Rel: "Follows", On: []int{0}, Fanout: 5}}
	plan, err := scale.Analyze(q, cons)
	if err != nil {
		b.Fatal(err)
	}
	r := newDetRand(3)
	inst := rel.NewInstance()
	users := 50000
	for j := 0; j < 5; j++ {
		inst.Add(rel.NewFact("Follows", 0, rel.Value(1+r.Intn(users-1))))
	}
	for u := 1; u < users; u++ {
		for j := 0; j < r.Intn(6); j++ {
			inst.Add(rel.NewFact("Follows", rel.Value(u), rel.Value(r.Intn(users))))
		}
	}
	b.Run("bounded-plan", func(b *testing.B) {
		var fetched int
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, f, err := scale.Execute(plan, inst)
			if err != nil {
				b.Fatal(err)
			}
			fetched = f
		}
		b.ReportMetric(float64(fetched), "fetched")
	})
	b.Run("full-evaluation", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cq.Evaluate(q, inst)
		}
		b.ReportMetric(float64(inst.Len()), "fetched")
	})
}
